(* The rewriting engine: repeatedly fires rules from a set anywhere in a
   query, recording a trace.  The trace lets tests check the *derivations*
   of Figures 4 and 6, not just their end points, and gives the optimizer
   an explanation facility. *)

open Kola
open Kola.Term

type step = {
  rule_name : string;
  result : query;  (** whole query after the firing *)
}

type trace = step list

type stats = {
  firings : int;
  attempts : int;  (** rule-at-node match attempts, the unification cost *)
}

type outcome = { query : query; trace : trace; stats : stats }

let pp_trace ppf trace =
  List.iter
    (fun s ->
      Fmt.pf ppf "  --%s--> %a@." s.rule_name Pretty.pp_query s.result)
    trace

(* Apply the first rule (in catalog order) that fires anywhere in the query,
   outermost first; query rules are tried at the query level first.
   [counter], when given, accumulates rule-at-node match attempts — the
   unification cost of the step. *)
let step_once ?schema ?(counter = ref 0) (rules : Rule.t list) (q : query) :
    (string * query) option =
  let attempts = counter in
  let fun_rules, query_rules =
    List.partition
      (fun r ->
        match r.Rule.body with
        | Rule.Fun_rule _ | Rule.Pred_rule _ -> true
        | Rule.Query_rule _ -> false)
      rules
  in
  let from_query_rules =
    List.find_map
      (fun r ->
        incr attempts;
        Option.map (fun q' -> (r.Rule.name, q')) (Rule.apply_query ?schema r q))
      query_rules
  in
  match from_query_rules with
  | Some _ as res -> res
  | None ->
    let strat tgt =
      List.find_map
        (fun r ->
          incr attempts;
          Option.map (fun t -> (r.Rule.name, t))
            (Strategy.of_rule ?schema r tgt))
        fun_rules
    in
    let named = ref "" in
    let s tgt =
      match strat tgt with
      | Some (name, t) ->
        named := name;
        Some t
      | None -> None
    in
    Option.map
      (fun body -> (!named, { q with body }))
      (Strategy.apply_func (Strategy.once_topdown s) q.body)

(* Normalize [q] under [rules], up to [fuel] firings. *)
let run ?schema ?(fuel = 10_000) (rules : Rule.t list) (q : query) : outcome =
  let counter = ref 0 in
  let rec go n q trace firings =
    if n = 0 then (q, trace, firings)
    else
      match step_once ?schema ~counter rules q with
      | Some (name, q') ->
        go (n - 1) q' ({ rule_name = name; result = q' } :: trace) (firings + 1)
      | None -> (q, trace, firings)
  in
  let q', trace, firings = go fuel q [] 0 in
  {
    query = q';
    trace = List.rev trace;
    stats = { firings; attempts = !counter };
  }

(* Same, over a bare function (no query argument), used when transforming
   subplans. *)
let run_func ?schema ?(fuel = 10_000) rules f =
  let outcome = run ?schema ~fuel rules (query f Value.Unit) in
  (outcome.query.body, outcome.trace)

let fired_rules outcome = List.map (fun s -> s.rule_name) outcome.trace

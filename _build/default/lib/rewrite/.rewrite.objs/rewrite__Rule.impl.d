lib/rewrite/rule.ml: Fmt Kola List Match Option Pretty Props Schema Subst Value

lib/rewrite/match.mli: Kola Subst

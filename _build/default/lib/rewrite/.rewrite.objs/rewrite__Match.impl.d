lib/rewrite/match.ml: Bool Kola List Option String Subst Value

lib/rewrite/subst.mli: Fmt Kola

lib/rewrite/subst.ml: Fmt Kola List Pretty Value

lib/rewrite/engine.ml: Fmt Kola List Option Pretty Rule Strategy Value

lib/rewrite/engine.mli: Fmt Kola Rule

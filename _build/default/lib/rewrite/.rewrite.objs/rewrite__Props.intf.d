lib/rewrite/props.mli: Fmt Kola

lib/rewrite/props.ml: Fmt Kola Schema

lib/rewrite/strategy.mli: Kola Rule

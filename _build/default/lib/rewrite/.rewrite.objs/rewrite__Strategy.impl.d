lib/rewrite/strategy.ml: Kola List Option Rule

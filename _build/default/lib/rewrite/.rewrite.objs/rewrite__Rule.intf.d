lib/rewrite/rule.mli: Fmt Kola Props Subst

(* One-way matching of rule patterns against (sub)terms.

   This is the "unification" of the paper's Section 2.3 discussion: because
   KOLA terms are variable-free, structural matching with consistent hole
   binding is the *entire* applicability test — no environmental analysis,
   no head routines.  Matching is linear in the pattern size. *)

open Kola
open Kola.Term

let rec func subst pat t =
  match pat, t with
  | Fhole h, _ -> Subst.bind_func subst h t
  | Id, Id | Pi1, Pi1 | Pi2, Pi2 | Flat, Flat | Sng, Sng -> Some subst
  | Prim a, Prim b when String.equal a b -> Some subst
  (* Compositions match modulo associativity: both chains are flattened and
     matched elementwise, except that a bare hole element may absorb any
     non-empty run of consecutive target elements (the paper's rule 17 binds
     g to whatever processing follows the inner loop, however long). *)
  | Compose _, Compose _ -> chain_match subst (unchain pat) (unchain t)
  | Pairf (p1, p2), Pairf (t1, t2)
  | Times (p1, p2), Times (t1, t2)
  | Nest (p1, p2), Nest (t1, t2)
  | Unnest (p1, p2), Unnest (t1, t2) ->
    Option.bind (func subst p1 t1) (fun s -> func s p2 t2)
  | Kf pv, Kf tv -> value subst pv tv
  | Cf (p1, pv), Cf (t1, tv) ->
    Option.bind (func subst p1 t1) (fun s -> value s pv tv)
  | Con (pp, p1, p2), Con (tp, t1, t2) ->
    Option.bind (pred subst pp tp) (fun s ->
        Option.bind (func s p1 t1) (fun s -> func s p2 t2))
  | Arith a, Arith b when a = b -> Some subst
  | Agg a, Agg b when a = b -> Some subst
  | Setop a, Setop b when a = b -> Some subst
  | Iterate (pp, p1), Iterate (tp, t1)
  | Iter (pp, p1), Iter (tp, t1)
  | Join (pp, p1), Join (tp, t1) ->
    Option.bind (pred subst pp tp) (fun s -> func s p1 t1)
  | ( ( Id | Pi1 | Pi2 | Prim _ | Compose _ | Pairf _ | Times _ | Kf _ | Cf _
      | Con _ | Arith _ | Agg _ | Setop _ | Flat | Sng | Iterate _ | Iter _
      | Join _ | Nest _ | Unnest _ ),
      _ ) -> None

(* Match a flattened pattern chain against a flattened target chain.  Bare
   hole elements may absorb one or more consecutive target elements; all
   other elements match exactly one.  Backtracks over absorption lengths. *)
and chain_match subst lps tps =
  match lps, tps with
  | [], [] -> Some subst
  | [], _ :: _ | _ :: _, [] -> None
  | Fhole h :: lrest, _ ->
    let n = List.length tps in
    let max_take = n - List.length lrest in
    let rec try_take k =
      if k > max_take then None
      else
        let rec split i acc = function
          | rest when i = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> split (i - 1) (x :: acc) rest
        in
        let taken, rest = split k [] tps in
        match Subst.bind_func subst h (chain taken) with
        | Some s -> (
          match chain_match s lrest rest with
          | Some _ as res -> res
          | None -> try_take (k + 1))
        | None -> try_take (k + 1)
    in
    try_take 1
  | lp :: lrest, tp :: trest ->
    Option.bind (func subst lp tp) (fun s -> chain_match s lrest trest)

and pred subst pat t =
  match pat, t with
  | Phole h, _ -> Subst.bind_pred subst h t
  | Eq, Eq | Leq, Leq | Gt, Gt | In, In -> Some subst
  | Primp a, Primp b when String.equal a b -> Some subst
  | Oplus (pp, pf), Oplus (tp, tf) ->
    Option.bind (pred subst pp tp) (fun s -> func s pf tf)
  | Andp (p1, p2), Andp (t1, t2) | Orp (p1, p2), Orp (t1, t2) ->
    Option.bind (pred subst p1 t1) (fun s -> pred s p2 t2)
  | Inv p1, Inv t1 | Conv p1, Conv t1 -> pred subst p1 t1
  | Kp a, Kp b when Bool.equal a b -> Some subst
  | Cp (p1, pv), Cp (t1, tv) ->
    Option.bind (pred subst p1 t1) (fun s -> value s pv tv)
  | ( ( Eq | Leq | Gt | In | Primp _ | Oplus _ | Andp _ | Orp _ | Inv _
      | Conv _ | Kp _ | Cp _ ),
      _ ) -> None

and value subst pat t =
  match pat with
  | Value.Hole h -> Subst.bind_value subst h t
  | _ ->
    (* Non-hole value patterns must match exactly; patterns do not descend
       into the structure of sets and objects. *)
    let pat = Subst.apply_value subst pat in
    if Value.is_ground pat && Value.equal pat t then Some subst
    else
      match pat, t with
      | Value.Pair (p1, p2), Value.Pair (t1, t2) ->
        Option.bind (value subst p1 t1) (fun s -> value s p2 t2)
      | _ -> None

let func_matches pat t = Option.is_some (func Subst.empty pat t)
let pred_matches pat t = Option.is_some (pred Subst.empty pat t)

(** Substitutions binding pattern holes to ground terms.

    [apply_*] instantiates a pattern under a binding; unbound holes are
    left in place so substitutions compose. *)

type t = {
  funcs : (string * Kola.Term.func) list;
  preds : (string * Kola.Term.pred) list;
  values : (string * Kola.Value.t) list;
}

val empty : t

val bind_func : t -> string -> Kola.Term.func -> t option
(** [None] when the hole is already bound to a different term. *)

val bind_pred : t -> string -> Kola.Term.pred -> t option
val bind_value : t -> string -> Kola.Value.t -> t option
val find_func : t -> string -> Kola.Term.func option
val find_pred : t -> string -> Kola.Term.pred option
val find_value : t -> string -> Kola.Value.t option
val apply_func : t -> Kola.Term.func -> Kola.Term.func
val apply_pred : t -> Kola.Term.pred -> Kola.Term.pred
val apply_value : t -> Kola.Value.t -> Kola.Value.t
val pp : t Fmt.t

(** One-way matching of rule patterns against (sub)terms — the paper's
    "unification" applicability test.

    Because KOLA terms are variable-free, structural matching with
    consistent hole binding is the entire test: no environmental analysis,
    no head routines.  Compositions match modulo associativity: both chains
    are flattened and matched elementwise, and a bare hole element may
    absorb any non-empty run of consecutive target elements. *)

val func : Subst.t -> Kola.Term.func -> Kola.Term.func -> Subst.t option
(** [func subst pattern target] extends [subst] or fails. *)

val pred : Subst.t -> Kola.Term.pred -> Kola.Term.pred -> Subst.t option

val value : Subst.t -> Kola.Value.t -> Kola.Value.t -> Subst.t option
(** Value patterns are holes, pairs of patterns, or exact constants. *)

val chain_match :
  Subst.t -> Kola.Term.func list -> Kola.Term.func list -> Subst.t option
(** Match a flattened pattern chain against a flattened target chain. *)

val func_matches : Kola.Term.func -> Kola.Term.func -> bool
val pred_matches : Kola.Term.pred -> Kola.Term.pred -> bool

(* Substitutions binding pattern holes to ground terms.

   A binding environment maps function holes to functions, predicate holes to
   predicates and value holes to values.  [apply_*] instantiates a pattern
   under a binding; unbound holes are left in place so substitutions compose. *)

open Kola
open Kola.Term

type t = {
  funcs : (string * func) list;
  preds : (string * pred) list;
  values : (string * Value.t) list;
}

let empty = { funcs = []; preds = []; values = [] }

let bind_func t h f =
  match List.assoc_opt h t.funcs with
  | Some f' -> if equal_func f f' then Some t else None
  | None -> Some { t with funcs = (h, f) :: t.funcs }

let bind_pred t h p =
  match List.assoc_opt h t.preds with
  | Some p' -> if equal_pred p p' then Some t else None
  | None -> Some { t with preds = (h, p) :: t.preds }

let bind_value t h v =
  match List.assoc_opt h t.values with
  | Some v' -> if Value.equal v v' then Some t else None
  | None -> Some { t with values = (h, v) :: t.values }

let find_func t h = List.assoc_opt h t.funcs
let find_pred t h = List.assoc_opt h t.preds
let find_value t h = List.assoc_opt h t.values

let rec apply_func t f =
  match f with
  | Fhole h -> (
    match find_func t h with Some f' -> f' | None -> f)
  | Id | Pi1 | Pi2 | Prim _ | Flat | Sng | Arith _ | Agg _ | Setop _ -> f
  | Compose (f1, f2) -> Compose (apply_func t f1, apply_func t f2)
  | Pairf (f1, f2) -> Pairf (apply_func t f1, apply_func t f2)
  | Times (f1, f2) -> Times (apply_func t f1, apply_func t f2)
  | Nest (f1, f2) -> Nest (apply_func t f1, apply_func t f2)
  | Unnest (f1, f2) -> Unnest (apply_func t f1, apply_func t f2)
  | Kf v -> Kf (apply_value t v)
  | Cf (f1, v) -> Cf (apply_func t f1, apply_value t v)
  | Con (p, f1, f2) -> Con (apply_pred t p, apply_func t f1, apply_func t f2)
  | Iterate (p, f1) -> Iterate (apply_pred t p, apply_func t f1)
  | Iter (p, f1) -> Iter (apply_pred t p, apply_func t f1)
  | Join (p, f1) -> Join (apply_pred t p, apply_func t f1)

and apply_pred t p =
  match p with
  | Phole h -> (
    match find_pred t h with Some p' -> p' | None -> p)
  | Eq | Leq | Gt | In | Primp _ | Kp _ -> p
  | Oplus (p1, f) -> Oplus (apply_pred t p1, apply_func t f)
  | Andp (p1, p2) -> Andp (apply_pred t p1, apply_pred t p2)
  | Orp (p1, p2) -> Orp (apply_pred t p1, apply_pred t p2)
  | Inv p1 -> Inv (apply_pred t p1)
  | Conv p1 -> Conv (apply_pred t p1)
  | Cp (p1, v) -> Cp (apply_pred t p1, apply_value t v)

and apply_value t v =
  match v with
  | Value.Hole h -> (
    match find_value t h with Some v' -> v' | None -> v)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Named _ -> v
  | Value.Pair (a, b) -> Value.Pair (apply_value t a, apply_value t b)
  | Value.Set xs -> Value.set (List.map (apply_value t) xs)
  | Value.Bag xs -> Value.bag (List.map (apply_value t) xs)
  | Value.List xs -> Value.list (List.map (apply_value t) xs)
  | Value.Obj o ->
    Value.Obj
      { o with Value.fields = List.map (fun (k, x) -> (k, apply_value t x)) o.Value.fields }

let pp ppf t =
  let pf ppf (h, f) = Fmt.pf ppf "?%s := %a" h Pretty.pp_func f in
  let ppr ppf (h, p) = Fmt.pf ppf "?%s := %a" h Pretty.pp_pred p in
  let pv ppf (h, v) = Fmt.pf ppf "?%s := %a" h Value.pp v in
  Fmt.pf ppf "@[<v>%a%a%a@]" (Fmt.list pf) t.funcs (Fmt.list ppr) t.preds
    (Fmt.list pv) t.values

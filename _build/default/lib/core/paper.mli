(** The paper's worked examples as KOLA terms, named as in the paper. *)

(** {1 Figure 4} *)

val t1k_source : Term.query
(** iterate(Kp(T), city) ∘ iterate(Kp(T), addr) ! P *)

val t1k_target : Term.query
(** iterate(Kp(T), city ∘ addr) ! P *)

val age_gt_25 : Term.pred

val t2k_source : Term.query
(** iterate(Kp(T), age) ∘ iterate(gt ⊕ ⟨age, Kf(25)⟩, id) ! P *)

val t2k_target : Term.query
(** iterate(Cp(gtᵒ, 25), id) ∘ iterate(Kp(T), age) ! P — the paper prints
    Cp(leq, 25); see DESIGN.md on the rule-13 boundary erratum. *)

val t2k_mid : Term.query
(** The intermediate form after rule 13. *)

(** {1 Section 3.2 / Figure 6} *)

val nested_children : Term.func -> Term.query
(** The shared K3/K4 shape, parameterised by the projection inside the
    inner predicate (π2 for K3, π1 for K4). *)

val k3 : Term.query
val k4 : Term.query

val k4_optimized : Term.query
(** Figure 6's end point: the iter replaced by a conditional. *)

(** {1 Figure 3: the Garage Query} *)

val kg1_inner_pred : Term.pred

(** The hidden-join form. *)
val kg1 : Term.query

val kg2_join : Term.func

(** The untangled nest-of-join form. *)
val kg2 : Term.query

(** After Step 1 (break up). *)
val kg1a : Term.query

(** After Step 2 (bottom out). *)
val kg1b : Term.query

(** After Step 3 (pull up nest). *)
val kg1c : Term.query

(** {1 Miscellany} *)

val cities_of_people : Term.func

val injective_example : Term.func -> Term.func * Term.func
(** The Section 4.2 precondition example: both sides of the
    intersection-commutes-with-injective-map rule, instantiated at f. *)

(** {1 Schema shorthands} *)

val kp_t : Term.pred
val age : Term.func
val addr : Term.func
val city : Term.func
val child : Term.func
val cars : Term.func
val grgs : Term.func
val p_set : Value.t
val v_set : Value.t

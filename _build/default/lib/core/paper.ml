(* The worked examples of the paper, as KOLA terms.

   Naming follows the paper: [kg1]/[kg2] are the two "Garage Query" forms of
   Figure 3, [k3]/[k4] the KOLA translations of the structurally identical
   nested queries A3/A4 of Figure 2 (Section 3.2), and [t1k_*]/[t2k_*] the
   source and target forms of Figure 4. *)

open Term

let kp_t = Kp true
let age = Prim "age"
let addr = Prim "addr"
let city = Prim "city"
let child = Prim "child"
let cars = Prim "cars"
let grgs = Prim "grgs"
let p_set = Value.Named "P"
let v_set = Value.Named "V"

(* Figure 4, T1K.
   Source: iterate(Kp(T), city) ∘ iterate(Kp(T), addr) ! P
   Target: iterate(Kp(T), city ∘ addr) ! P *)
let t1k_source =
  query (Compose (Iterate (kp_t, city), Iterate (kp_t, addr))) p_set

let t1k_target = query (Iterate (kp_t, Compose (city, addr))) p_set

(* Figure 4, T2K.
   Source: iterate(Kp(T), age) ∘ iterate(gt ⊕ ⟨age, Kf(25)⟩, id) ! P
   Target: iterate(Cp(gtᵒ, 25), id) ∘ iterate(Kp(T), age) ! P
   (the paper prints Cp(leq, 25); see DESIGN.md on the rule-13 boundary
   erratum — gtᵒ is the converse of gt, i.e. strictly-less-than). *)
let age_gt_25 = Oplus (Gt, Pairf (age, Kf (Value.Int 25)))

let t2k_source =
  query (Compose (Iterate (kp_t, age), Iterate (age_gt_25, Id))) p_set

let t2k_target =
  query
    (Compose
       (Iterate (Cp (Conv Gt, Value.Int 25), Id), Iterate (kp_t, age)))
    p_set

(* Intermediate form after rule 13: iterate(Cp(gtᵒ,25) ⊕ age, age) ! P *)
let t2k_mid =
  query (Iterate (Oplus (Cp (Conv Gt, Value.Int 25), age), age)) p_set

(* Section 3.2: K3 and K4, the KOLA versions of queries A3 and A4.
     iterate(Kp(T), ⟨id, iter(gt ⊕ ⟨age ∘ π, Kf(25)⟩, π2) ∘ ⟨id, child⟩⟩) ! P
   with π = π2 for K3 (child's age — free variable is bound) and π = π1 for
   K4 (person's age — refers to the environment). *)
let nested_children proj =
  query
    (Iterate
       ( kp_t,
         Pairf
           ( Id,
             Compose
               ( Iter
                   ( Oplus (Gt, Pairf (Compose (age, proj), Kf (Value.Int 25))),
                     Pi2 ),
                 Pairf (Id, child) ) ) ))
    p_set

let k3 = nested_children Pi2
let k4 = nested_children Pi1

(* Figure 6's end point for K4: the iter is replaced by a conditional, i.e.
   iterate(Kp(T), ⟨id, con(Cp(gtᵒ, 25) ⊕ age, child, Kf(∅))⟩) ! P *)
let k4_optimized =
  query
    (Iterate
       ( kp_t,
         Pairf
           ( Id,
             Con
               ( Oplus (Cp (Conv Gt, Value.Int 25), age),
                 child,
                 Kf (Value.set []) ) ) ))
    p_set

(* Figure 3: the hidden-join "Garage Query" KG1 and its untangled form KG2.

   KG1: iterate (Kp(T), ⟨id,
          flat ∘
          iter (Kp(T), grgs ∘ π2) ∘
          ⟨id, iter (in ⊕ ⟨π1, cars ∘ π2⟩, π2) ∘
            ⟨id, Kf(P)⟩⟩⟩) ! V *)
let kg1_inner_pred = Oplus (In, Pairf (Pi1, Compose (cars, Pi2)))

let kg1 =
  query
    (Iterate
       ( kp_t,
         Pairf
           ( Id,
             Compose
               ( Compose (Flat, Iter (kp_t, Compose (grgs, Pi2))),
                 Pairf
                   ( Id,
                     Compose (Iter (kg1_inner_pred, Pi2), Pairf (Id, Kf p_set))
                   ) ) ) ))
    v_set

(* KG2: nest (π1, π2) ∘ (unnest (π1, π2) × id) ∘
        ⟨join (in ⊕ (id × cars), id × grgs), π1⟩ ! [V, P] *)
let kg2_join =
  Join (Oplus (In, Times (Id, cars)), Times (Id, grgs))

let kg2 =
  query
    (Compose
       ( Compose (Nest (Pi1, Pi2), Times (Unnest (Pi1, Pi2), Id)),
         Pairf (kg2_join, Pi1) ))
    (Value.Pair (v_set, p_set))

(* Intermediate forms of the Section 4.1 walkthrough. *)

(* KG1a: after Step 1 (break up the monolithic iterate). *)
let kg1a =
  query
    (chain
       [
         Iterate (kp_t, Pairf (Pi1, Compose (Flat, Pi2)));
         Iterate (kp_t, Pairf (Pi1, Iter (kp_t, Compose (grgs, Pi2))));
         Iterate (kp_t, Pairf (Pi1, Iter (kg1_inner_pred, Pi2)));
         Iterate (kp_t, Pairf (Id, Kf p_set));
       ])
    v_set

(* KG1b: after Step 2 (bottom out with a nest of a join). *)
let kg1b =
  query
    (chain
       [
         Iterate (kp_t, Pairf (Pi1, Compose (Flat, Pi2)));
         Iterate (kp_t, Pairf (Pi1, Iter (kp_t, Compose (grgs, Pi2))));
         Iterate (kp_t, Pairf (Pi1, Iter (kg1_inner_pred, Pi2)));
         Nest (Pi1, Pi2);
         Pairf (Join (kp_t, Id), Pi1);
       ])
    (Value.Pair (v_set, p_set))

(* KG1c: after Step 3 (pull nest up to the top). *)
let kg1c =
  query
    (chain
       [
         Nest (Pi1, Pi2);
         Times (Unnest (Pi1, Pi2), Id);
         Times (Iterate (kp_t, Pairf (Pi1, Compose (grgs, Pi2))), Id);
         Times (Iterate (kg1_inner_pred, Id), Id);
         Pairf (Join (kp_t, Id), Pi1);
       ])
    (Value.Pair (v_set, p_set))

(* Figure 1 over KOLA: T1's source is the composition of two projections;
   also exported as plain functions for unit tests. *)
let cities_of_people = Iterate (kp_t, Compose (city, addr))

(* The example precondition rule of Section 4.2: for injective f,
   (iterate(Kp(T), f) ! A) ∩ (iterate(Kp(T), f) ! B)
     ≡ iterate(Kp(T), f) ! (A ∩ B). *)
let injective_example f =
  ( Compose (Setop Inter, Times (Iterate (kp_t, f), Iterate (kp_t, f))),
    Compose (Iterate (kp_t, f), Setop Inter) )

(* Types for KOLA and AQUA terms.

   [Var] is a unification variable used by {!Typing} for inference over the
   polymorphic combinators (id, π1, ...). *)

type t =
  | Unit
  | Bool
  | Int
  | Str
  | Pair of t * t
  | Set of t
  | Bag of t
  | List of t
  | Obj of string
  | Var of int

let rec pp ppf = function
  | Unit -> Fmt.string ppf "unit"
  | Bool -> Fmt.string ppf "bool"
  | Int -> Fmt.string ppf "int"
  | Str -> Fmt.string ppf "str"
  | Pair (a, b) -> Fmt.pf ppf "[%a, %a]" pp a pp b
  | Set a -> Fmt.pf ppf "{%a}" pp a
  | Bag a -> Fmt.pf ppf "{|%a|}" pp a
  | List a -> Fmt.pf ppf "<%a>" pp a
  | Obj c -> Fmt.string ppf c
  | Var i -> Fmt.pf ppf "'t%d" i

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match a, b with
  | Unit, Unit | Bool, Bool | Int, Int | Str, Str -> true
  | Pair (a1, b1), Pair (a2, b2) -> equal a1 a2 && equal b1 b2
  | Set a, Set b | Bag a, Bag b | List a, List b -> equal a b
  | Obj c1, Obj c2 -> String.equal c1 c2
  | Var i, Var j -> i = j
  | (Unit | Bool | Int | Str | Pair _ | Set _ | Bag _ | List _ | Obj _ | Var _), _
    -> false

let rec occurs i = function
  | Var j -> i = j
  | Pair (a, b) -> occurs i a || occurs i b
  | Set a | Bag a | List a -> occurs i a
  | Unit | Bool | Int | Str | Obj _ -> false

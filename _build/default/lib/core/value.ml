(* Values of the KOLA / AQUA object model.

   Sets are kept in canonical form (sorted, deduplicated) so that structural
   equality coincides with set equality.  Objects carry a class name and an
   object identifier; object equality is identity-based ([cls], [oid]), as in
   the object-oriented data models the paper targets.  [Named] denotes a
   top-level database collection (e.g. the paper's P and V); it is resolved
   against a database environment at evaluation time, which keeps printed
   terms small ([Kf(P)] rather than an inlined extent). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | Set of t list
  | Bag of t list
  | List of t list
  | Obj of obj
  | Named of string
  | Hole of string  (** metavariable; only valid inside rule patterns *)

and obj = { cls : string; oid : int; fields : (string * t) list }

exception Not_ground of string

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> Stdlib.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Set xs, Set ys -> compare_list xs ys
  | Set _, _ -> -1
  | _, Set _ -> 1
  | Bag xs, Bag ys -> compare_list xs ys
  | Bag _, _ -> -1
  | _, Bag _ -> 1
  | List xs, List ys -> compare_list xs ys
  | List _, _ -> -1
  | _, List _ -> 1
  | Obj x, Obj y ->
    let c = String.compare x.cls y.cls in
    if c <> 0 then c else Int.compare x.oid y.oid
  | Obj _, _ -> -1
  | _, Obj _ -> 1
  | Named x, Named y -> String.compare x y
  | Named _, _ -> -1
  | _, Named _ -> 1
  | Hole x, Hole y -> String.compare x y

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let equal a b = compare a b = 0

(* Hashing folds object identity, mirroring [compare]. *)
let rec hash v =
  match v with
  | Unit -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 65599) + hash b
  | Set xs -> List.fold_left (fun acc x -> (acc * 131) + hash x) 3 xs
  | Bag xs -> List.fold_left (fun acc x -> (acc * 131) + hash x) 5 xs
  | List xs -> List.fold_left (fun acc x -> (acc * 131) + hash x) 7 xs
  | Obj { cls; oid; _ } -> Hashtbl.hash (cls, oid)
  | Named s -> Hashtbl.hash ("named", s)
  | Hole s -> Hashtbl.hash ("hole", s)

(* Smart constructor keeping sets canonical. *)
let set elems = Set (List.sort_uniq compare elems)
let bag elems = Bag (List.sort compare elems)
let list elems = List elems
let pair a b = Pair (a, b)
let int i = Int i
let str s = Str s
let bool b = Bool b

let obj ~cls ~oid fields = Obj { cls; oid; fields }

let field name v =
  match v with
  | Obj o -> (
    match List.assoc_opt name o.fields with
    | Some x -> Some x
    | None -> None)
  | _ -> None

let set_elements = function
  | Set xs -> Some xs
  | _ -> None

let is_ground v =
  let rec go = function
    | Hole _ -> false
    | Unit | Bool _ | Int _ | Str _ | Named _ -> true
    | Pair (a, b) -> go a && go b
    | Set xs | Bag xs | List xs -> List.for_all go xs
    | Obj o -> List.for_all (fun (_, x) -> go x) o.fields
  in
  go v

let rec size = function
  | Unit | Bool _ | Int _ | Str _ | Named _ | Hole _ -> 1
  | Pair (a, b) -> 1 + size a + size b
  | Set xs | Bag xs | List xs -> 1 + List.fold_left (fun n x -> n + size x) 0 xs
  | Obj _ -> 1

let rec pp ppf v =
  match v with
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "[@[%a,@ %a@]]" pp a pp b
  | Set xs -> Fmt.pf ppf "{@[%a@]}" (Fmt.list ~sep:Fmt.comma pp) xs
  | Bag xs -> Fmt.pf ppf "{|@[%a@]|}" (Fmt.list ~sep:Fmt.comma pp) xs
  | List xs -> Fmt.pf ppf "<@[%a@]>" (Fmt.list ~sep:Fmt.comma pp) xs
  | Obj { cls; oid; _ } -> Fmt.pf ppf "%s#%d" cls oid
  | Named s -> Fmt.string ppf s
  | Hole s -> Fmt.pf ppf "?%s" s

let to_string v = Fmt.str "%a" pp v

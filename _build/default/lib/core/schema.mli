(** Database schemas: classes (abstract data types) with typed attribute
    functions, named extents, and the annotations that feed rule
    preconditions (Section 4.2).

    Attribute names must be unique across classes so that a primitive
    function name determines its signature, as in the paper's examples. *)

type annotation =
  | Injective  (** the attribute is key-like *)
  | Total      (** never fails on a well-typed receiver *)

type attribute = {
  attr_name : string;
  attr_class : string;
  attr_ty : Ty.t;
  attr_annots : annotation list;
}

type cls = { cls_name : string; cls_attrs : string list }

type t = {
  classes : cls list;
  attributes : attribute list;
  extents : (string * Ty.t) list;
}

exception Schema_error of string

val empty : t

val add_class :
  t -> name:string -> attrs:(string * Ty.t * annotation list) list -> t
(** @raise Schema_error if an attribute name is reused across classes. *)

val add_extent : t -> name:string -> ty:Ty.t -> t
val find_class : t -> string -> cls option
val find_attribute : t -> string -> attribute option

val attribute_exn : t -> string -> attribute
(** @raise Schema_error on unknown attributes. *)

val extent_ty : t -> string -> Ty.t option
val has_annotation : t -> string -> annotation -> bool

val paper : t
(** The paper's running schema: Person (name, age, addr, child, cars,
    grgs), Address (city, street, zip), Vehicle (make, year); extents P, V
    and A.  [name] is annotated {!Injective}. *)

(** Operational semantics of KOLA — Tables 1 and 2, executable.

    The evaluator is parameterised by a database environment (resolving
    {!Value.Named} extents), an execution backend, a duplicate-elimination
    discipline, and work counters used by the benchmarks as an
    implementation-independent cost measure. *)

exception Error of string

(** [Naive] executes join/nest by the literal semantics equations (nested
    loops).  [Hashed] recognises join predicates of the form
    [q ⊕ (g1 × g2)] with [q ∈ {eq, in}] (possibly under [&] with a residual
    conjunct) and executes them with hash indexes, and groups nest by
    hashing.  Untangling hidden joins (Section 4) exists precisely to
    expose such structure. *)
type backend = Naive | Hashed

(** [Eager] canonicalises every intermediate collection as a set.
    [Deferred] keeps intermediates as bags and deduplicates once at the end
    — the paper's "defer duplicate elimination" extension; sound only for
    duplicate-insensitive pipelines (see test_bags.ml). *)
type dedup = Eager | Deferred

type counters = {
  mutable func_calls : int;
  mutable pred_calls : int;
  mutable tuples : int;  (** collection elements touched *)
}

val fresh_counters : unit -> counters

type ctx = {
  db : (string * Value.t) list;
  backend : backend;
  dedup : dedup;
  counters : counters;
}

val ctx :
  ?db:(string * Value.t) list -> ?backend:backend -> ?dedup:dedup -> unit -> ctx

val func : ctx -> Term.func -> Value.t -> Value.t
(** [func ctx f v] is [f ! v].
    @raise Error on type-improper application or unbound extents. *)

val pred : ctx -> Term.pred -> Value.t -> bool
(** [pred ctx p v] is [p ? v]. *)

val run : ctx -> Term.query -> Value.t
(** Evaluate a query; under [Deferred] dedup, finalizes the result. *)

val hash_joinable :
  Term.pred ->
  ([ `Eq | `In ] * Term.func * Term.func * Term.pred option) option
(** Decompose a join predicate into an indexable part and a residual
    conjunct, if possible. *)

val finalize : Value.t -> Value.t
(** Canonicalise every bag in a value into a set. *)

val deep_resolve : ctx -> Value.t -> Value.t
(** Replace every {!Value.Named} extent by its database contents, so results
    can be compared structurally. *)

(** {1 One-shot entry points} *)

val eval_func :
  ?db:(string * Value.t) list -> ?backend:backend -> ?dedup:dedup ->
  Term.func -> Value.t -> Value.t

val eval_pred :
  ?db:(string * Value.t) list -> ?backend:backend -> ?dedup:dedup ->
  Term.pred -> Value.t -> bool

val eval_query :
  ?db:(string * Value.t) list -> ?backend:backend -> ?dedup:dedup ->
  Term.query -> Value.t

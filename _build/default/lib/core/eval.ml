(* Operational semantics of KOLA (Tables 1 and 2 of the paper).

   The evaluator is parameterised by:
   - a database environment resolving [Value.Named] extents;
   - a backend: [Naive] executes join/nest/unnest by the literal semantics
     equations (nested loops); [Hashed] recognises equi- and membership-join
     predicates of the form q ⊕ (g1 × g2) with q ∈ {eq, in} and executes them
     with hash indexes, and executes nest by hash grouping.  The hidden-join
     optimisation of Section 4 exists precisely to expose such join structure.
   - counters recording work done, used by the benchmarks as an
     implementation-independent cost measure. *)

open Term

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type backend = Naive | Hashed

(* Duplicate-elimination discipline (the paper's Section 6 "current
   efforts": optimizations that defer duplicate elimination are expressed
   as transformations producing bags as intermediate results).  [Eager]
   canonicalises every intermediate collection as a set; [Deferred] keeps
   intermediates as bags and deduplicates only when a set is demanded at
   the end ({!finalize}). *)
type dedup = Eager | Deferred

type counters = {
  mutable func_calls : int;   (** combinator invocations *)
  mutable pred_calls : int;   (** predicate invocations *)
  mutable tuples : int;       (** set elements touched by query combinators *)
}

let fresh_counters () = { func_calls = 0; pred_calls = 0; tuples = 0 }

type ctx = {
  db : (string * Value.t) list;
  backend : backend;
  dedup : dedup;
  counters : counters;
}

let ctx ?(db = []) ?(backend = Naive) ?(dedup = Eager) () =
  { db; backend; dedup; counters = fresh_counters () }

(* Build an intermediate collection under the context's discipline. *)
let collection ctx elems =
  match ctx.dedup with
  | Eager -> Value.set elems
  | Deferred -> Value.Bag elems

let rec resolve ctx v =
  match v with
  | Value.Named n -> (
    match List.assoc_opt n ctx.db with
    | Some v -> resolve ctx v
    | None -> error "unbound database name %s" n)
  | Value.Hole h -> error "evaluated a pattern hole ?%s" h
  | v -> v

let as_pair ctx v =
  match resolve ctx v with
  | Value.Pair (a, b) -> (a, b)
  | v -> error "expected a pair, got %a" Value.pp v

let as_set ctx v =
  match resolve ctx v with
  | Value.Set xs -> xs
  | Value.Bag xs -> xs
  | Value.List xs -> xs
  | v -> error "expected a set, got %a" Value.pp v

let as_int ctx v =
  match resolve ctx v with
  | Value.Int i -> i
  | v -> error "expected an int, got %a" Value.pp v


module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Value comparison used by leq/gt; ints compare numerically, strings
   lexicographically.  Other values use the canonical structural order so
   that ordering predicates are total, as an optimizer substrate needs. *)
let value_leq a b = Value.compare a b <= 0
let value_gt a b = Value.compare a b > 0

let rec func ctx f v =
  ctx.counters.func_calls <- ctx.counters.func_calls + 1;
  match f with
  | Id -> resolve ctx v
  | Pi1 -> fst (as_pair ctx v)
  | Pi2 -> snd (as_pair ctx v)
  | Prim name -> (
    match resolve ctx v with
    | Value.Obj _ as o -> (
      match Value.field name o with
      | Some x -> x
      | None -> error "object %a has no attribute %s" Value.pp o name)
    | v -> error "attribute %s applied to non-object %a" name Value.pp v)
  | Compose (f, g) -> func ctx f (func ctx g v)
  | Pairf (f, g) -> Value.Pair (func ctx f v, func ctx g v)
  | Times (f, g) ->
    let a, b = as_pair ctx v in
    Value.Pair (func ctx f a, func ctx g b)
  | Kf c -> resolve ctx c
  | Cf (f, c) -> func ctx f (Value.Pair (c, v))
  | Con (p, f, g) -> if pred ctx p v then func ctx f v else func ctx g v
  | Arith op ->
    let a, b = as_pair ctx v in
    let a = as_int ctx a and b = as_int ctx b in
    Value.Int (match op with Add -> a + b | Sub -> a - b | Mul -> a * b)
  | Agg op -> (
    let xs = as_set ctx v in
    ctx.counters.tuples <- ctx.counters.tuples + List.length xs;
    match op with
    | Count -> Value.Int (List.length xs)
    | Sum -> Value.Int (List.fold_left (fun acc x -> acc + as_int ctx x) 0 xs)
    | Max -> (
      match xs with
      | [] -> error "max of empty set"
      | x :: rest ->
        List.fold_left (fun m y -> if value_gt y m then y else m) x rest)
    | Min -> (
      match xs with
      | [] -> error "min of empty set"
      | x :: rest ->
        List.fold_left (fun m y -> if value_gt m y then y else m) x rest))
  | Setop op -> (
    let a, b = as_pair ctx v in
    let xs = as_set ctx a and ys = as_set ctx b in
    ctx.counters.tuples <- ctx.counters.tuples + List.length xs + List.length ys;
    match op with
    | Union -> collection ctx (xs @ ys)
    | Inter ->
      collection ctx (List.filter (fun x -> List.exists (Value.equal x) ys) xs)
    | Diff ->
      collection ctx
        (List.filter (fun x -> not (List.exists (Value.equal x) ys)) xs))
  | Sng -> Value.set [ resolve ctx v ]
  | Flat ->
    let outer = as_set ctx v in
    ctx.counters.tuples <- ctx.counters.tuples + List.length outer;
    collection ctx (List.concat_map (fun s -> as_set ctx s) outer)
  | Iterate (p, f) ->
    let xs = as_set ctx v in
    ctx.counters.tuples <- ctx.counters.tuples + List.length xs;
    collection ctx
      (List.filter_map
         (fun x -> if pred ctx p x then Some (func ctx f x) else None)
         xs)
  | Iter (p, f) ->
    let e, set = as_pair ctx v in
    let ys = as_set ctx set in
    ctx.counters.tuples <- ctx.counters.tuples + List.length ys;
    collection ctx
      (List.filter_map
         (fun y ->
           let pair = Value.Pair (e, y) in
           if pred ctx p pair then Some (func ctx f pair) else None)
         ys)
  | Join (p, f) -> join ctx p f v
  | Nest (f, g) -> nest ctx f g v
  | Unnest (f, g) ->
    let xs = as_set ctx v in
    ctx.counters.tuples <- ctx.counters.tuples + List.length xs;
    collection ctx
      (List.concat_map
         (fun x ->
           let key = func ctx f x in
           let inner = as_set ctx (func ctx g x) in
           ctx.counters.tuples <- ctx.counters.tuples + List.length inner;
           List.map (fun y -> Value.Pair (key, y)) inner)
         xs)
  | Fhole h -> error "evaluated a pattern hole ?%s" h

and pred ctx p v =
  ctx.counters.pred_calls <- ctx.counters.pred_calls + 1;
  match p with
  | Eq ->
    let a, b = as_pair ctx v in
    Value.equal (resolve ctx a) (resolve ctx b)
  | Leq ->
    let a, b = as_pair ctx v in
    value_leq (resolve ctx a) (resolve ctx b)
  | Gt ->
    let a, b = as_pair ctx v in
    value_gt (resolve ctx a) (resolve ctx b)
  | In ->
    let a, b = as_pair ctx v in
    let a = resolve ctx a in
    let ys = as_set ctx b in
    ctx.counters.tuples <- ctx.counters.tuples + List.length ys;
    List.exists (Value.equal a) ys
  | Primp name -> (
    match resolve ctx v with
    | Value.Obj _ as o -> (
      match Value.field name o with
      | Some (Value.Bool b) -> b
      | Some x -> error "predicate attribute %s is not boolean: %a" name Value.pp x
      | None -> error "object %a has no attribute %s" Value.pp o name)
    | v -> error "predicate %s applied to non-object %a" name Value.pp v)
  | Oplus (p, f) -> pred ctx p (func ctx f v)
  | Andp (p, q) -> pred ctx p v && pred ctx q v
  | Orp (p, q) -> pred ctx p v || pred ctx q v
  | Inv p -> not (pred ctx p v)
  | Conv p ->
    let a, b = as_pair ctx v in
    pred ctx p (Value.Pair (b, a))
  | Kp b -> b
  | Cp (p, c) -> pred ctx p (Value.Pair (c, v))
  | Phole h -> error "evaluated a pattern hole ?%s" h

(* join(p, f) ! [A, B].  Under [Hashed] we recognise
     p = q ⊕ (g1 × g2) [& r]      with q ∈ {eq, in}
   and build a hash index over B keyed by g2 (eq) or by the elements of
   g2!b (in); any residual conjunct r is applied as a filter. *)
and join ctx p f v =
  let a, b = as_pair ctx v in
  let xs = as_set ctx a and ys = as_set ctx b in
  let naive () =
    ctx.counters.tuples <-
      ctx.counters.tuples + (List.length xs * (1 + List.length ys));
    collection ctx
      (List.concat_map
         (fun x ->
           List.filter_map
             (fun y ->
               let pair = Value.Pair (x, y) in
               if pred ctx p pair then Some (func ctx f pair) else None)
             ys)
         xs)
  in
  match ctx.backend with
  | Naive -> naive ()
  | Hashed -> (
    match hash_joinable p with
    | None -> naive ()
    | Some (kind, g1, g2, residual) ->
      ctx.counters.tuples <-
        ctx.counters.tuples + List.length xs + List.length ys;
      let index : Value.t list VH.t = VH.create (2 * List.length ys) in
      let add key y =
        let prev = Option.value ~default:[] (VH.find_opt index key) in
        VH.replace index key (y :: prev)
      in
      List.iter
        (fun y ->
          match kind with
          | `Eq -> add (func ctx g2 y) y
          | `In ->
            let elems = as_set ctx (func ctx g2 y) in
            ctx.counters.tuples <- ctx.counters.tuples + List.length elems;
            List.iter (fun e -> add e y) elems)
        ys;
      let out =
        List.concat_map
          (fun x ->
            let key = func ctx g1 x in
            let matches = Option.value ~default:[] (VH.find_opt index key) in
            List.filter_map
              (fun y ->
                let pair = Value.Pair (x, y) in
                let keep =
                  match residual with None -> true | Some r -> pred ctx r pair
                in
                if keep then Some (func ctx f pair) else None)
              matches)
          xs
      in
      collection ctx out)

(* Decompose a join predicate into an indexable part and a residual.
   Recognised shapes: q ⊕ (g1 × g2), and q ⊕ ⟨h1, h2⟩ where one of h1/h2
   projects (a function of) the first component and the other the second —
   e.g. the translator's eq ⊕ ⟨dept ∘ π2, π1⟩. *)
and hash_joinable p =
  let side h =
    match Term.unchain h with
    | [ Pi1 ] -> Some (`L Id)
    | [ Pi2 ] -> Some (`R Id)
    | parts -> (
      match List.rev parts with
      | Pi1 :: (_ :: _ as rev_rest) -> Some (`L (Term.chain (List.rev rev_rest)))
      | Pi2 :: (_ :: _ as rev_rest) -> Some (`R (Term.chain (List.rev rev_rest)))
      | _ -> None)
  in
  match p with
  | Oplus (Eq, Times (g1, g2)) -> Some (`Eq, g1, g2, None)
  | Oplus (In, Times (g1, g2)) -> Some (`In, g1, g2, None)
  | Oplus (Eq, Pairf (h1, h2)) -> (
    match side h1, side h2 with
    | Some (`L ga), Some (`R gb) | Some (`R gb), Some (`L ga) ->
      (* eq is symmetric: probe with the left extractor, index the right *)
      Some (`Eq, ga, gb, None)
    | _ -> None)
  | Oplus (In, Pairf (h1, h2)) -> (
    match side h1, side h2 with
    | Some (`L ga), Some (`R gb) -> Some (`In, ga, gb, None)
    | _ -> None)
  | Andp (p1, p2) -> (
    match hash_joinable p1 with
    | Some (kind, g1, g2, None) -> Some (kind, g1, g2, Some p2)
    | Some (kind, g1, g2, Some r) -> Some (kind, g1, g2, Some (Andp (r, p2)))
    | None -> (
      match hash_joinable p2 with
      | Some (kind, g1, g2, None) -> Some (kind, g1, g2, Some p1)
      | Some (kind, g1, g2, Some r) -> Some (kind, g1, g2, Some (Andp (p1, r)))
      | None -> None))
  | _ -> None

(* nest(f, g) ! [A, B] = {[y, {g!x | x ∈ A, f!x = y}] | y ∈ B}.  Elements of
   B matched by nothing in A get the empty set, which is how the paper's nest
   avoids outer-join NULLs. *)
and nest ctx f g v =
  let a, b = as_pair ctx v in
  let xs = as_set ctx a and ys = as_set ctx b in
  match ctx.backend with
  | Naive ->
    ctx.counters.tuples <-
      ctx.counters.tuples + (List.length ys * (1 + List.length xs));
    collection ctx
      (List.map
         (fun y ->
           let group =
             List.filter_map
               (fun x ->
                 if Value.equal (func ctx f x) y then Some (func ctx g x)
                 else None)
               xs
           in
           Value.Pair (y, collection ctx group))
         ys)
  | Hashed ->
    ctx.counters.tuples <- ctx.counters.tuples + List.length xs + List.length ys;
    let groups : Value.t list VH.t = VH.create (2 * List.length ys) in
    List.iter
      (fun x ->
        let key = func ctx f x in
        let prev = Option.value ~default:[] (VH.find_opt groups key) in
        VH.replace groups key (func ctx g x :: prev))
      xs;
    collection ctx
      (List.map
         (fun y ->
           let group = Option.value ~default:[] (VH.find_opt groups y) in
           Value.Pair (y, collection ctx group))
         ys)

(* Replace every [Named] extent in a value by its database contents, so
   results can be compared structurally. *)
let rec deep_resolve ctx v =
  match resolve ctx v with
  | Value.Pair (a, b) -> Value.Pair (deep_resolve ctx a, deep_resolve ctx b)
  | Value.Set xs -> Value.set (List.map (deep_resolve ctx) xs)
  | Value.Bag xs -> Value.bag (List.map (deep_resolve ctx) xs)
  | Value.List xs -> Value.list (List.map (deep_resolve ctx) xs)
  | v -> v

(* Deduplicate a deferred result: every bag becomes a canonical set. *)
let rec finalize v =
  match v with
  | Value.Bag xs | Value.Set xs -> Value.set (List.map finalize xs)
  | Value.List xs -> Value.list (List.map finalize xs)
  | Value.Pair (a, b) -> Value.Pair (finalize a, finalize b)
  | v -> v

let run ctx (q : query) =
  let v = func ctx q.body q.arg in
  match ctx.dedup with Eager -> v | Deferred -> finalize v

(* Convenience entry points. *)
let eval_func ?db ?backend ?dedup f v =
  let c = ctx ?db ?backend ?dedup () in
  func c f v

let eval_pred ?db ?backend ?dedup p v =
  let c = ctx ?db ?backend ?dedup () in
  pred c p v

let eval_query ?db ?backend ?dedup q =
  let c = ctx ?db ?backend ?dedup () in
  run c q

(* Paper-notation pretty printer for KOLA terms.

   Composition chains are printed without parentheses (associativity), as the
   paper does; ⊕ is the predicate/function combiner, ⁻¹ predicate inversion. *)

open Term

let arith_name = function Add -> "add" | Sub -> "sub" | Mul -> "mul"

let agg_name = function
  | Count -> "cnt"
  | Sum -> "sum"
  | Max -> "max"
  | Min -> "min"

let setop_name = function
  | Union -> "union"
  | Inter -> "inter"
  | Diff -> "diff"

let rec pp_func ppf f =
  match f with
  | Compose _ ->
    let fs = unchain f in
    Fmt.pf ppf "@[<hv>%a@]" (Fmt.list ~sep:(Fmt.any " \u{2218}@ ") pp_atomf) fs
  | _ -> pp_atomf ppf f

and pp_atomf ppf = function
  | Id -> Fmt.string ppf "id"
  | Pi1 -> Fmt.string ppf "\u{3C0}1"
  | Pi2 -> Fmt.string ppf "\u{3C0}2"
  | Prim s -> Fmt.string ppf s
  | Compose _ as f -> Fmt.pf ppf "(%a)" pp_func f
  | Pairf (f, g) -> Fmt.pf ppf "\u{27E8}@[%a,@ %a@]\u{27E9}" pp_func f pp_func g
  | Times (f, g) -> Fmt.pf ppf "(@[%a \u{D7}@ %a@])" pp_atomf f pp_atomf g
  | Kf v -> Fmt.pf ppf "Kf(%a)" Value.pp v
  | Cf (f, v) -> Fmt.pf ppf "Cf(@[%a,@ %a@])" pp_func f Value.pp v
  | Con (p, f, g) ->
    Fmt.pf ppf "con(@[%a,@ %a,@ %a@])" pp_pred p pp_func f pp_func g
  | Arith a -> Fmt.string ppf (arith_name a)
  | Agg a -> Fmt.string ppf (agg_name a)
  | Setop s -> Fmt.string ppf (setop_name s)
  | Sng -> Fmt.string ppf "sng"
  | Flat -> Fmt.string ppf "flat"
  | Iterate (p, f) -> Fmt.pf ppf "iterate(@[%a,@ %a@])" pp_pred p pp_func f
  | Iter (p, f) -> Fmt.pf ppf "iter(@[%a,@ %a@])" pp_pred p pp_func f
  | Join (p, f) -> Fmt.pf ppf "join(@[%a,@ %a@])" pp_pred p pp_func f
  | Nest (f, g) -> Fmt.pf ppf "nest(@[%a,@ %a@])" pp_func f pp_func g
  | Unnest (f, g) -> Fmt.pf ppf "unnest(@[%a,@ %a@])" pp_func f pp_func g
  | Fhole h -> Fmt.pf ppf "?%s" h

and pp_pred ppf = function
  | Eq -> Fmt.string ppf "eq"
  | Leq -> Fmt.string ppf "leq"
  | Gt -> Fmt.string ppf "gt"
  | In -> Fmt.string ppf "in"
  | Primp s -> Fmt.string ppf s
  | Oplus (p, f) -> Fmt.pf ppf "(@[%a \u{2295}@ %a@])" pp_pred p pp_atomf f
  | Andp (p, q) -> Fmt.pf ppf "(@[%a &@ %a@])" pp_pred p pp_pred q
  | Orp (p, q) -> Fmt.pf ppf "(@[%a |@ %a@])" pp_pred p pp_pred q
  | Inv p -> Fmt.pf ppf "%a\u{207B}\u{B9}" pp_pred p
  | Conv p -> Fmt.pf ppf "%a\u{1D52}" pp_pred p
  | Kp b -> Fmt.pf ppf "Kp(%c)" (if b then 'T' else 'F')
  | Cp (p, v) -> Fmt.pf ppf "Cp(@[%a,@ %a@])" pp_pred p Value.pp v
  | Phole h -> Fmt.pf ppf "?%s" h

let pp_query ppf (q : query) =
  Fmt.pf ppf "@[<hv>%a@ ! %a@]" pp_func q.body Value.pp q.arg

let func_to_string f = Fmt.str "%a" pp_func f
let pred_to_string p = Fmt.str "%a" pp_pred p
let query_to_string q = Fmt.str "%a" pp_query q

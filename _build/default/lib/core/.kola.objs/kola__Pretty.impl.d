lib/core/pretty.ml: Fmt Term Value

lib/core/ty.mli: Fmt

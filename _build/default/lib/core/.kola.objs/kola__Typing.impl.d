lib/core/typing.ml: Fmt List Schema String Term Ty Value

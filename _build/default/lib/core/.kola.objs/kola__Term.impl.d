lib/core/term.ml: Bool List String Value

lib/core/schema.ml: Fmt List String Ty

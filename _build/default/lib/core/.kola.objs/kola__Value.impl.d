lib/core/value.ml: Fmt Hashtbl Int List Stdlib String

lib/core/paper.mli: Term Value

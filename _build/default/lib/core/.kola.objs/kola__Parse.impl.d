lib/core/parse.ml: Fmt List String Term Value

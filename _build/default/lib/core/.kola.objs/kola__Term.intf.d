lib/core/term.mli: Value

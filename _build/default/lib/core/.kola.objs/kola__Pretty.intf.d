lib/core/pretty.mli: Fmt Term

lib/core/typing.mli: Schema Term Ty

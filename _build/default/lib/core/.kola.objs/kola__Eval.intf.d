lib/core/eval.mli: Term Value

lib/core/schema.mli: Ty

lib/core/eval.ml: Fmt Hashtbl List Option Term Value

lib/core/paper.ml: Term Value

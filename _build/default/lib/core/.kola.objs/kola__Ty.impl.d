lib/core/ty.ml: Fmt String

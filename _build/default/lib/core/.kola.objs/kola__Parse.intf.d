lib/core/parse.mli: Term Value

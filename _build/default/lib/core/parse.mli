(** Parser for KOLA terms in paper notation (ASCII or the pretty-printer's
    Unicode).

    {v
    functions:   id, pi1/π1, pi2/π2, flat, sng, attribute names, Kf(v),
                 Cf(f, v), con(p, f, g), iterate(p, f), iter(p, f),
                 join(p, f), nest(f, g), unnest(f, g), cnt/sum/max/min,
                 add/sub/mul, union/inter/diff, <f, g> or ⟨f, g⟩,
                 f x g or f × g, f o g or f ∘ g, ?hole
    predicates:  eq, leq, gt, in, Kp(T), Kp(F), Cp(p, v), p (+) f or p ⊕ f,
                 p & q, p | q, p^-1 or p⁻¹ (negation), p^o or pᵒ (converse)
    values:      ints, "strings", true, false, (), [v1, v2], {v1, ...},
                 Uppercase extent names, ?hole
    queries:     f ! v
    v}

    Example: [iterate(Kp(T), city o addr) ! P]. *)

exception Error of string

val func : string -> Term.func
val pred : string -> Term.pred
val value : string -> Value.t
val query : string -> Term.query

(** Type inference for KOLA terms.

    Combinators are polymorphic (id : α → α, π1 : [α,β] → α, ...), so
    typing infers with unification variables.  Holes are treated as
    polymorphic unknowns with one type per hole name, so rule patterns can
    be checked for internal consistency too. *)

exception Type_error of string

val func_ty : Schema.t -> Term.func -> Ty.t * Ty.t
(** Most general (input, output) typing.
    @raise Type_error if the term does not type.
    @raise Schema.Schema_error on unknown attributes. *)

val pred_ty : Schema.t -> Term.pred -> Ty.t
(** Most general domain of a predicate. *)

val query_ty : Schema.t -> Term.query -> Ty.t
(** Result type of a query, checking the argument against the function's
    input type. *)

val well_typed_func : Schema.t -> Term.func -> bool
val well_typed_pred : Schema.t -> Term.pred -> bool
val well_typed_query : Schema.t -> Term.query -> bool

(** Paper-notation pretty printer for KOLA terms.

    Composition chains print without parentheses, as the paper reads them;
    output re-parses with {!Parse} (property-tested). *)

val pp_func : Term.func Fmt.t
val pp_pred : Term.pred Fmt.t
val pp_query : Term.query Fmt.t
val func_to_string : Term.func -> string
val pred_to_string : Term.pred -> string
val query_to_string : Term.query -> string
val arith_name : Term.arith -> string
val agg_name : Term.agg -> string
val setop_name : Term.setop -> string

(** Types for KOLA and AQUA terms.  [Var] is a unification variable used by
    {!Typing}. *)

type t =
  | Unit
  | Bool
  | Int
  | Str
  | Pair of t * t
  | Set of t
  | Bag of t
  | List of t
  | Obj of string  (** class name *)
  | Var of int

val pp : t Fmt.t
val to_string : t -> string
val equal : t -> t -> bool

val occurs : int -> t -> bool
(** Occurs-check for the unifier. *)

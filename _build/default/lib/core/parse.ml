(* A parser for KOLA terms in (ASCII-friendly) paper notation.

   Functions:   id, pi1, pi2, flat, attribute names, Kf(v), Cf(f, v),
                con(p, f, g), iterate(p, f), iter(p, f), join(p, f),
                nest(f, g), unnest(f, g), cnt/sum/max/min, add/sub/mul,
                union/inter/diff, <f, g> (pair former), f x g (product),
                f o g (composition, also ∘), ?h (hole)
   Predicates:  eq, leq, gt, in, Kp(T), Kp(F), Cp(p, v), p (+) f (also ⊕),
                p & q, p | q, p^-1 (inverse), p^o (converse), ?h
   Values:      integers, "strings", true, false, (), [v1, v2], {v1, ...},
                UPPERCASE names (database extents), ?h
   Queries:     f ! v

   Example:  iterate(Kp(T), city o addr) ! P *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type token =
  | TIdent of string
  | TInt of int
  | TString of string
  | THole of string
  | TLparen | TRparen
  | TLbracket | TRbracket
  | TLbrace | TRbrace
  | TLangle | TRangle
  | TComma
  | TCompose       (* o  or ∘ *)
  | TTimes         (* x  or × *)
  | TOplus         (* (+) or ⊕ *)
  | TAmp | TBar
  | TInv           (* ^-1 or ⁻¹ *)
  | TConv          (* ^o *)
  | TBang
  | TEof

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev (TEof :: acc)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_digit c || (c = '-' && i + 1 < n && is_digit s.[i + 1]) then begin
        let j = ref (i + 1) in
        while !j < n && is_digit s.[!j] do incr j done;
        go !j (TInt (int_of_string (String.sub s i (!j - i))) :: acc)
      end
      else if c = '?' then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char s.[!j] do incr j done;
        if !j = i + 1 then error "expected a hole name after ?";
        go !j (THole (String.sub s (i + 1) (!j - i - 1)) :: acc)
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s i (!j - i) in
        (* a lone 'o' or 'x' between terms is an operator *)
        match word with
        | "o" -> go !j (TCompose :: acc)
        | "x" -> go !j (TTimes :: acc)
        | _ -> go !j (TIdent word :: acc)
      end
      else if c = '"' then begin
        let j = ref (i + 1) in
        while !j < n && s.[!j] <> '"' do incr j done;
        if !j >= n then error "unterminated string";
        go (!j + 1) (TString (String.sub s (i + 1) (!j - i - 1)) :: acc)
      end
      else if i + 2 < n && String.sub s i 3 = "(+)" then go (i + 3) (TOplus :: acc)
      else if i + 2 < n && String.sub s i 3 = "^-1" then go (i + 3) (TInv :: acc)
      else if i + 1 < n && String.sub s i 2 = "^o" then go (i + 2) (TConv :: acc)
      else begin
        (* unicode operators from the pretty-printer *)
        let utf8_at p pat = String.length pat <= n - p && String.sub s p (String.length pat) = pat in
        if utf8_at i "\u{2218}" then go (i + String.length "\u{2218}") (TCompose :: acc)
        else if utf8_at i "\u{1D52}" then go (i + String.length "\u{1D52}") (TConv :: acc)
        else if utf8_at i "\u{207B}\u{B9}" then
          go (i + String.length "\u{207B}\u{B9}") (TInv :: acc)
        else if utf8_at i "\u{D7}" then go (i + String.length "\u{D7}") (TTimes :: acc)
        else if utf8_at i "\u{2295}" then go (i + String.length "\u{2295}") (TOplus :: acc)
        else if utf8_at i "\u{27E8}" then go (i + String.length "\u{27E8}") (TLangle :: acc)
        else if utf8_at i "\u{27E9}" then go (i + String.length "\u{27E9}") (TRangle :: acc)
        else if utf8_at i "\u{3C0}1" then go (i + String.length "\u{3C0}1") (TIdent "pi1" :: acc)
        else if utf8_at i "\u{3C0}2" then go (i + String.length "\u{3C0}2") (TIdent "pi2" :: acc)
        else
          match c with
          | '(' -> go (i + 1) (TLparen :: acc)
          | ')' -> go (i + 1) (TRparen :: acc)
          | '[' -> go (i + 1) (TLbracket :: acc)
          | ']' -> go (i + 1) (TRbracket :: acc)
          | '{' -> go (i + 1) (TLbrace :: acc)
          | '}' -> go (i + 1) (TRbrace :: acc)
          | '<' -> go (i + 1) (TLangle :: acc)
          | '>' -> go (i + 1) (TRangle :: acc)
          | ',' -> go (i + 1) (TComma :: acc)
          | '&' -> go (i + 1) (TAmp :: acc)
          | '|' -> go (i + 1) (TBar :: acc)
          | '!' -> go (i + 1) (TBang :: acc)
          | c -> error "unexpected character %C at offset %d" c i
      end
  in
  go 0 []

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> TEof | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> TEof
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok what =
  if peek st = tok then advance st else error "expected %s" what

(* value *)
let rec parse_value st : Value.t =
  match peek st with
  | TInt i ->
    advance st;
    Value.Int i
  | TString s ->
    advance st;
    Value.Str s
  | THole h ->
    advance st;
    Value.Hole h
  | TIdent "true" ->
    advance st;
    Value.Bool true
  | TIdent "false" ->
    advance st;
    Value.Bool false
  | TIdent name when name <> "" && name.[0] >= 'A' && name.[0] <= 'Z' ->
    advance st;
    Value.Named name
  | TLparen ->
    advance st;
    expect st TRparen ")";
    Value.Unit
  | TLbracket ->
    advance st;
    let a = parse_value st in
    expect st TComma ",";
    let b = parse_value st in
    expect st TRbracket "]";
    Value.Pair (a, b)
  | TLbrace ->
    advance st;
    if peek st = TRbrace then begin
      advance st;
      Value.set []
    end
    else begin
      let first = parse_value st in
      let rec more acc =
        if peek st = TComma then begin
          advance st;
          more (parse_value st :: acc)
        end
        else List.rev acc
      in
      let elems = more [ first ] in
      expect st TRbrace "}";
      Value.set elems
    end
  | _ -> error "expected a value"

(* func: composition chain of products of atoms *)
and parse_func st : Term.func =
  let first = parse_times st in
  let rec chain acc =
    if peek st = TCompose then begin
      advance st;
      chain (Term.Compose (acc, parse_times st))
    end
    else acc
  in
  chain first

and parse_times st : Term.func =
  let first = parse_fatom st in
  let rec go acc =
    if peek st = TTimes then begin
      advance st;
      go (Term.Times (acc, parse_fatom st))
    end
    else acc
  in
  go first

and parse_fatom st : Term.func =
  match peek st with
  | THole h ->
    advance st;
    Term.Fhole h
  | TLparen ->
    advance st;
    let f = parse_func st in
    expect st TRparen ")";
    f
  | TLangle ->
    advance st;
    let a = parse_func st in
    expect st TComma ",";
    let b = parse_func st in
    expect st TRangle "closing angle";
    Term.Pairf (a, b)
  | TIdent name -> (
    advance st;
    let unary_pf mk =
      expect st TLparen "(";
      let p = parse_pred st in
      expect st TComma ",";
      let f = parse_func st in
      expect st TRparen ")";
      mk p f
    in
    let unary_ff mk =
      expect st TLparen "(";
      let a = parse_func st in
      expect st TComma ",";
      let b = parse_func st in
      expect st TRparen ")";
      mk a b
    in
    match name with
    | "id" -> Term.Id
    | "pi1" -> Term.Pi1
    | "pi2" -> Term.Pi2
    | "flat" -> Term.Flat
    | "sng" -> Term.Sng
    | "cnt" -> Term.Agg Term.Count
    | "sum" -> Term.Agg Term.Sum
    | "max" -> Term.Agg Term.Max
    | "min" -> Term.Agg Term.Min
    | "add" -> Term.Arith Term.Add
    | "sub" -> Term.Arith Term.Sub
    | "mul" -> Term.Arith Term.Mul
    | "union" -> Term.Setop Term.Union
    | "inter" -> Term.Setop Term.Inter
    | "diff" -> Term.Setop Term.Diff
    | "Kf" ->
      expect st TLparen "(";
      let v = parse_value st in
      expect st TRparen ")";
      Term.Kf v
    | "Cf" ->
      expect st TLparen "(";
      let f = parse_func st in
      expect st TComma ",";
      let v = parse_value st in
      expect st TRparen ")";
      Term.Cf (f, v)
    | "con" ->
      expect st TLparen "(";
      let p = parse_pred st in
      expect st TComma ",";
      let f = parse_func st in
      expect st TComma ",";
      let g = parse_func st in
      expect st TRparen ")";
      Term.Con (p, f, g)
    | "iterate" -> unary_pf (fun p f -> Term.Iterate (p, f))
    | "iter" -> unary_pf (fun p f -> Term.Iter (p, f))
    | "join" -> unary_pf (fun p f -> Term.Join (p, f))
    | "nest" -> unary_ff (fun a b -> Term.Nest (a, b))
    | "unnest" -> unary_ff (fun a b -> Term.Unnest (a, b))
    | name -> Term.Prim name)
  | _ -> error "expected a function"

(* pred: | over & over ⊕-chains over atoms with postfix ^-1 / ^o *)
and parse_pred st : Term.pred =
  let lhs = parse_pred_and st in
  if peek st = TBar then begin
    advance st;
    Term.Orp (lhs, parse_pred st)
  end
  else lhs

and parse_pred_and st : Term.pred =
  let lhs = parse_oplus st in
  if peek st = TAmp then begin
    advance st;
    Term.Andp (lhs, parse_pred_and st)
  end
  else lhs

and parse_oplus st : Term.pred =
  let first = parse_patom st in
  let rec go acc =
    if peek st = TOplus then begin
      advance st;
      go (Term.Oplus (acc, parse_times st))
    end
    else go_postfix acc
  and go_postfix acc =
    match peek st with
    | TInv ->
      advance st;
      go (Term.Inv acc)
    | TConv ->
      advance st;
      go (Term.Conv acc)
    | _ -> acc
  in
  go first

and parse_patom st : Term.pred =
  match peek st with
  | THole h ->
    advance st;
    Term.Phole h
  | TLparen ->
    advance st;
    let p = parse_pred st in
    expect st TRparen ")";
    p
  | TIdent name -> (
    advance st;
    match name with
    | "eq" -> Term.Eq
    | "leq" -> Term.Leq
    | "gt" -> Term.Gt
    | "in" -> Term.In
    | "Kp" -> (
      expect st TLparen "(";
      match peek st with
      | TIdent ("T" | "true") ->
        advance st;
        expect st TRparen ")";
        Term.Kp true
      | TIdent ("F" | "false") ->
        advance st;
        expect st TRparen ")";
        Term.Kp false
      | _ -> error "expected T or F in Kp(...)")
    | "Cp" ->
      expect st TLparen "(";
      let p = parse_pred st in
      expect st TComma ",";
      let v = parse_value st in
      expect st TRparen ")";
      Term.Cp (p, v)
    | name -> Term.Primp name)
  | _ -> error "expected a predicate"

let finish st what =
  match peek st with
  | TEof -> ()
  | _ -> error "trailing input after %s" what

let func (src : string) : Term.func =
  let st = { toks = tokenize src } in
  let f = parse_func st in
  finish st "function";
  f

let pred (src : string) : Term.pred =
  let st = { toks = tokenize src } in
  let p = parse_pred st in
  finish st "predicate";
  p

let value (src : string) : Value.t =
  let st = { toks = tokenize src } in
  let v = parse_value st in
  finish st "value";
  v

let query (src : string) : Term.query =
  let st = { toks = tokenize src } in
  let f = parse_func st in
  expect st TBang "!";
  let v = parse_value st in
  finish st "query";
  Term.query f v

(* Used by the COKO surface syntax: a rule written as "lhs --> rhs" (or with
   == for bidirectional reading).  Predicate rules are detected by trying
   the predicate parser first. *)
let _ = peek2

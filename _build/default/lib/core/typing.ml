(* Type inference for KOLA terms.

   Combinators are polymorphic (id : a → a, π1 : [a,b] → a, ...), so we infer
   with unification variables.  [func_ty] returns the most general
   (input, output) typing of a function; [pred_ty] the domain of a predicate.
   Holes are treated as polymorphic unknowns so rule patterns can be checked
   for internal type consistency too. *)

open Term

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type state = {
  schema : Schema.t;
  mutable next : int;
  mutable subst : (int * Ty.t) list;
  mutable hole_tys : (string * Ty.t) list;
      (** consistent typing for named holes across a pattern *)
}

let make_state schema = { schema; next = 0; subst = []; hole_tys = [] }

let fresh st =
  let i = st.next in
  st.next <- i + 1;
  Ty.Var i

let rec repr st t =
  match t with
  | Ty.Var i -> (
    match List.assoc_opt i st.subst with
    | Some t' -> repr st t'
    | None -> t)
  | t -> t

let rec resolve st t =
  match repr st t with
  | Ty.Pair (a, b) -> Ty.Pair (resolve st a, resolve st b)
  | Ty.Set a -> Ty.Set (resolve st a)
  | Ty.Bag a -> Ty.Bag (resolve st a)
  | Ty.List a -> Ty.List (resolve st a)
  | t -> t

let rec unify st a b =
  let a = repr st a and b = repr st b in
  match a, b with
  | Ty.Var i, Ty.Var j when i = j -> ()
  | Ty.Var i, t | t, Ty.Var i ->
    if Ty.occurs i (resolve st t) then
      type_error "occurs check failed: 't%d in %a" i Ty.pp (resolve st t)
    else st.subst <- (i, t) :: st.subst
  | Ty.Unit, Ty.Unit | Ty.Bool, Ty.Bool | Ty.Int, Ty.Int | Ty.Str, Ty.Str -> ()
  | Ty.Pair (a1, b1), Ty.Pair (a2, b2) ->
    unify st a1 a2;
    unify st b1 b2
  | Ty.Set a, Ty.Set b | Ty.Bag a, Ty.Bag b | Ty.List a, Ty.List b ->
    unify st a b
  | Ty.Obj c1, Ty.Obj c2 when String.equal c1 c2 -> ()
  | _ ->
    type_error "cannot unify %a with %a" Ty.pp (resolve st a) Ty.pp
      (resolve st b)

let hole_ty st name =
  match List.assoc_opt name st.hole_tys with
  | Some t -> t
  | None ->
    let t = fresh st in
    st.hole_tys <- (name, t) :: st.hole_tys;
    t

(* Typing of ground values.  Heterogeneous sets are rejected. *)
let rec value_ty st (v : Value.t) : Ty.t =
  match v with
  | Value.Unit -> Ty.Unit
  | Value.Bool _ -> Ty.Bool
  | Value.Int _ -> Ty.Int
  | Value.Str _ -> Ty.Str
  | Value.Pair (a, b) -> Ty.Pair (value_ty st a, value_ty st b)
  | Value.Set xs -> Ty.Set (elems_ty st xs)
  | Value.Bag xs -> Ty.Bag (elems_ty st xs)
  | Value.List xs -> Ty.List (elems_ty st xs)
  | Value.Obj o -> Ty.Obj o.cls
  | Value.Named n -> (
    match Schema.extent_ty st.schema n with
    | Some t -> t
    | None -> type_error "unknown extent %s" n)
  | Value.Hole h -> hole_ty st ("v:" ^ h)

and elems_ty st xs =
  let elem = fresh st in
  List.iter (fun x -> unify st elem (value_ty st x)) xs;
  elem

let prim_sig st name =
  let attr = Schema.attribute_exn st.schema name in
  (Ty.Obj attr.Schema.attr_class, attr.Schema.attr_ty)

(* infer_func st f = (input, output) *)
let rec infer_func st f : Ty.t * Ty.t =
  match f with
  | Id ->
    let a = fresh st in
    (a, a)
  | Pi1 ->
    let a = fresh st and b = fresh st in
    (Ty.Pair (a, b), a)
  | Pi2 ->
    let a = fresh st and b = fresh st in
    (Ty.Pair (a, b), b)
  | Prim name -> prim_sig st name
  | Compose (f, g) ->
    let gin, gout = infer_func st g in
    let fin, fout = infer_func st f in
    unify st gout fin;
    (gin, fout)
  | Pairf (f, g) ->
    let fin, fout = infer_func st f in
    let gin, gout = infer_func st g in
    unify st fin gin;
    (fin, Ty.Pair (fout, gout))
  | Times (f, g) ->
    let fin, fout = infer_func st f in
    let gin, gout = infer_func st g in
    (Ty.Pair (fin, gin), Ty.Pair (fout, gout))
  | Kf v ->
    let a = fresh st in
    (a, value_ty st v)
  | Cf (f, c) ->
    let fin, fout = infer_func st f in
    let a = fresh st in
    unify st fin (Ty.Pair (value_ty st c, a));
    (a, fout)
  | Con (p, f, g) ->
    let pdom = infer_pred st p in
    let fin, fout = infer_func st f in
    let gin, gout = infer_func st g in
    unify st pdom fin;
    unify st fin gin;
    unify st fout gout;
    (fin, fout)
  | Arith _ -> (Ty.Pair (Ty.Int, Ty.Int), Ty.Int)
  | Agg Count ->
    let a = fresh st in
    (Ty.Set a, Ty.Int)
  | Agg Sum -> (Ty.Set Ty.Int, Ty.Int)
  | Agg (Max | Min) ->
    let a = fresh st in
    (Ty.Set a, a)
  | Setop _ ->
    let a = fresh st in
    (Ty.Pair (Ty.Set a, Ty.Set a), Ty.Set a)
  | Sng ->
    let a = fresh st in
    (a, Ty.Set a)
  | Flat ->
    let a = fresh st in
    (Ty.Set (Ty.Set a), Ty.Set a)
  | Iterate (p, f) ->
    let pdom = infer_pred st p in
    let fin, fout = infer_func st f in
    unify st pdom fin;
    (Ty.Set fin, Ty.Set fout)
  | Iter (p, f) ->
    let e = fresh st and a = fresh st in
    let pdom = infer_pred st p in
    unify st pdom (Ty.Pair (e, a));
    let fin, fout = infer_func st f in
    unify st fin (Ty.Pair (e, a));
    (Ty.Pair (e, Ty.Set a), Ty.Set fout)
  | Join (p, f) ->
    let a = fresh st and b = fresh st in
    let pdom = infer_pred st p in
    unify st pdom (Ty.Pair (a, b));
    let fin, fout = infer_func st f in
    unify st fin (Ty.Pair (a, b));
    (Ty.Pair (Ty.Set a, Ty.Set b), Ty.Set fout)
  | Nest (f, g) ->
    let fin, fout = infer_func st f in
    let gin, gout = infer_func st g in
    unify st fin gin;
    (Ty.Pair (Ty.Set fin, Ty.Set fout), Ty.Set (Ty.Pair (fout, Ty.Set gout)))
  | Unnest (f, g) ->
    let fin, fout = infer_func st f in
    let gin, gout = infer_func st g in
    unify st fin gin;
    let elem = fresh st in
    unify st gout (Ty.Set elem);
    (Ty.Set fin, Ty.Set (Ty.Pair (fout, elem)))
  | Fhole h ->
    let input = hole_ty st ("fi:" ^ h) and output = hole_ty st ("fo:" ^ h) in
    (input, output)

and infer_pred st p : Ty.t =
  match p with
  | Eq | Leq | Gt ->
    let a = fresh st in
    Ty.Pair (a, a)
  | In ->
    let a = fresh st in
    Ty.Pair (a, Ty.Set a)
  | Primp name ->
    let input, output = prim_sig st name in
    unify st output Ty.Bool;
    input
  | Oplus (p, f) ->
    let pdom = infer_pred st p in
    let fin, fout = infer_func st f in
    unify st pdom fout;
    fin
  | Andp (p, q) | Orp (p, q) ->
    let pdom = infer_pred st p in
    let qdom = infer_pred st q in
    unify st pdom qdom;
    pdom
  | Inv p -> infer_pred st p
  | Conv p ->
    let a = fresh st and b = fresh st in
    unify st (infer_pred st p) (Ty.Pair (a, b));
    Ty.Pair (b, a)
  | Kp _ -> fresh st
  | Cp (p, c) ->
    let pdom = infer_pred st p in
    let a = fresh st in
    unify st pdom (Ty.Pair (value_ty st c, a));
    a
  | Phole h -> hole_ty st ("pd:" ^ h)

(* Public entry points: fully-resolved typings. *)
let func_ty schema f =
  let st = make_state schema in
  let input, output = infer_func st f in
  (resolve st input, resolve st output)

let pred_ty schema p =
  let st = make_state schema in
  resolve st (infer_pred st p)

let query_ty schema (q : query) =
  let st = make_state schema in
  let input, output = infer_func st q.body in
  unify st input (value_ty st q.arg);
  resolve st output

let well_typed_func schema f =
  match func_ty schema f with
  | _ -> true
  | exception Type_error _ -> false

let well_typed_pred schema p =
  match pred_ty schema p with
  | _ -> true
  | exception Type_error _ -> false

let well_typed_query schema q =
  match query_ty schema q with
  | _ -> true
  | exception Type_error _ -> false

(** Values of the KOLA / AQUA object model.

    Sets are canonical (sorted, duplicate-free), so structural equality is
    set equality.  Objects have identity-based equality ([cls] and [oid]
    only), as in the object-oriented data models the paper targets.
    [Named] refers to a top-level database collection (the paper's P and
    V); it is resolved at evaluation time against a database environment. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | Set of t list  (** canonical: sorted, deduplicated; use {!set} to build *)
  | Bag of t list  (** sorted, duplicates kept; use {!bag} to build *)
  | List of t list (** order- and duplicate-preserving *)
  | Obj of obj
  | Named of string  (** a named database extent *)
  | Hole of string   (** pattern metavariable; invalid in ground values *)

and obj = { cls : string; oid : int; fields : (string * t) list }

exception Not_ground of string

(** Total order on values; objects compare by class and oid only. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Hash consistent with {!equal}. *)
val hash : t -> int

(** {1 Smart constructors} *)

val set : t list -> t
(** [set xs] sorts and deduplicates. *)

val bag : t list -> t
(** [bag xs] sorts (canonical bag) and keeps duplicates. *)

val list : t list -> t
val pair : t -> t -> t
val int : int -> t
val str : string -> t
val bool : bool -> t
val obj : cls:string -> oid:int -> (string * t) list -> t

(** {1 Observers} *)

val field : string -> t -> t option
(** [field name v] reads an object attribute. *)

val set_elements : t -> t list option

val is_ground : t -> bool
(** [false] iff the value contains a {!Hole} anywhere. *)

val size : t -> int
(** Parse-tree node count (sets and bags count as one node plus their
    elements; object internals are opaque). *)

val pp : t Fmt.t
val to_string : t -> string

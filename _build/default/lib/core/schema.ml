(* Database schemas: abstract data types with attribute functions, plus
   annotations used by rule preconditions (Section 4.2 of the paper).

   Attribute names are required to be unique across classes so that a
   primitive function name determines its signature; this matches the
   paper's examples (age/addr/child/cars/grgs on Person, city on Address). *)

type annotation = Injective | Total

type attribute = {
  attr_name : string;
  attr_class : string;  (** class the attribute belongs to *)
  attr_ty : Ty.t;       (** result type *)
  attr_annots : annotation list;
}

type cls = { cls_name : string; cls_attrs : string list }

type t = {
  classes : cls list;
  attributes : attribute list;
  extents : (string * Ty.t) list;
      (** named top-level collections, e.g. P : {Person} *)
}

exception Schema_error of string

let empty = { classes = []; attributes = []; extents = [] }

let find_class t name = List.find_opt (fun c -> String.equal c.cls_name name) t.classes

let find_attribute t name =
  List.find_opt (fun a -> String.equal a.attr_name name) t.attributes

let attribute_exn t name =
  match find_attribute t name with
  | Some a -> a
  | None -> raise (Schema_error (Fmt.str "unknown attribute %s" name))

let extent_ty t name = List.assoc_opt name t.extents

let has_annotation t name annot =
  match find_attribute t name with
  | Some a -> List.mem annot a.attr_annots
  | None -> false

let add_class t ~name ~attrs =
  List.iter
    (fun (attr_name, _, _) ->
      match find_attribute t attr_name with
      | Some a when not (String.equal a.attr_class name) ->
        raise
          (Schema_error
             (Fmt.str "attribute %s already defined on class %s" attr_name
                a.attr_class))
      | _ -> ())
    attrs;
  let attributes =
    t.attributes
    @ List.map
        (fun (attr_name, attr_ty, attr_annots) ->
          { attr_name; attr_class = name; attr_ty; attr_annots })
        attrs
  in
  let classes =
    t.classes @ [ { cls_name = name; cls_attrs = List.map (fun (n, _, _) -> n) attrs } ]
  in
  { t with classes; attributes }

let add_extent t ~name ~ty = { t with extents = t.extents @ [ (name, ty) ] }

(* The paper's running schema (Section 2.1): Person with addr, age, child,
   cars, grgs; Address with city; Vehicle with make and year.  P and V are
   the extents queried throughout the paper.  [name] is annotated injective
   so precondition rules have a key-like primitive to work with. *)
let paper =
  let t = empty in
  let t =
    add_class t ~name:"Address"
      ~attrs:
        [ ("city", Ty.Str, [ Total ]); ("street", Ty.Str, [ Total ]); ("zip", Ty.Int, [ Total ]) ]
  in
  let t =
    add_class t ~name:"Vehicle"
      ~attrs:[ ("make", Ty.Str, [ Total ]); ("year", Ty.Int, [ Total ]) ]
  in
  let t =
    add_class t ~name:"Person"
      ~attrs:
        [
          ("name", Ty.Str, [ Injective; Total ]);
          ("age", Ty.Int, [ Total ]);
          ("addr", Ty.Obj "Address", [ Total ]);
          ("child", Ty.Set (Ty.Obj "Person"), [ Total ]);
          ("cars", Ty.Set (Ty.Obj "Vehicle"), [ Total ]);
          ("grgs", Ty.Set (Ty.Obj "Address"), [ Total ]);
        ]
  in
  let t = add_extent t ~name:"P" ~ty:(Ty.Set (Ty.Obj "Person")) in
  let t = add_extent t ~name:"V" ~ty:(Ty.Set (Ty.Obj "Vehicle")) in
  let t = add_extent t ~name:"A" ~ty:(Ty.Set (Ty.Obj "Address")) in
  t

(* Type-directed random AQUA query generator over the paper schema.

   Used by (a) the translator-correctness property (AQUA and translated-KOLA
   denotations agree on random stores) and (b) the Section 4.2 size
   experiment, which needs queries of controlled nesting depth m. *)

open Aqua.Ast

type genv = {
  rng : Store.rng;
  persons : string list;   (* in-scope variables of type Person *)
  vehicles : string list;
  mutable counter : int;
  budget : int;            (* remaining nesting depth *)
}

let fresh g base =
  g.counter <- g.counter + 1;
  Fmt.str "%s%d" base g.counter

let deeper g = { g with budget = g.budget - 1 }

let chance g percent = Store.int g.rng 100 < percent

(* An integer-valued expression. *)
let rec int_expr g =
  match Store.int g.rng (if g.persons = [] then 2 else 4) with
  | 0 -> Const (Kola.Value.Int (Store.int g.rng 80))
  | 1 when g.budget > 0 ->
    Agg (Kola.Term.Count, person_set (deeper g))
  | 1 -> Const (Kola.Value.Int (Store.int g.rng 80))
  | _ -> Path (Var (Store.pick g.rng g.persons), "age")

(* A boolean expression usable as a selection predicate. *)
and pred g =
  match Store.int g.rng 6 with
  | 0 | 1 ->
    let cmp = Store.pick g.rng [ Gt; Leq; Lt; Geq; Eq ] in
    Bin (cmp, int_expr g, int_expr g)
  | 2 when g.persons <> [] && g.budget > 0 ->
    Bin (In, Var (Store.pick g.rng g.persons), person_set (deeper g))
  | 3 when g.vehicles <> [] && g.persons <> [] ->
    Bin
      ( In,
        Var (Store.pick g.rng g.vehicles),
        Path (Var (Store.pick g.rng g.persons), "cars") )
  | 4 -> Bin (And, pred { g with budget = 0 }, pred { g with budget = 0 })
  | _ -> Not (pred { g with budget = 0 })

(* A set-of-Person expression. *)
and person_set g =
  if g.budget <= 0 then
    if g.persons <> [] && chance g 40 then
      Path (Var (Store.pick g.rng g.persons), "child")
    else Extent "P"
  else
    match Store.int g.rng 4 with
    | 0 ->
      let v = fresh g "p" in
      Sel (lam v (pred { (deeper g) with persons = v :: g.persons }), person_set (deeper g))
    | 1 ->
      let v = fresh g "p" in
      (* identity-ish map keeps the type closed under generation *)
      App (lam v (Var v), person_set (deeper g))
    | 2 when g.persons <> [] -> Path (Var (Store.pick g.rng g.persons), "child")
    | _ -> Extent "P"

(* A result expression for the select head. *)
let rec head_expr g =
  match Store.int g.rng 6 with
  | 0 when g.persons <> [] -> Var (Store.pick g.rng g.persons)
  | 1 when g.persons <> [] -> Path (Var (Store.pick g.rng g.persons), "age")
  | 2 when g.persons <> [] && g.budget > 0 ->
    Pair (Var (Store.pick g.rng g.persons), person_set (deeper g))
  | 3 when g.budget > 0 -> Pair (head_expr (deeper g), int_expr g)
  | 4 when g.persons <> [] ->
    Path (Path (Var (Store.pick g.rng g.persons), "addr"), "city")
  | _ -> int_expr g

(* A closed query of nesting depth at most [depth]. *)
let query ~seed ~depth : expr =
  let g =
    { rng = Store.rng seed; persons = []; vehicles = []; counter = 0; budget = depth }
  in
  let v = fresh g "p" in
  let inner = { g with persons = [ v ]; budget = depth - 1 } in
  let body = head_expr inner in
  let source =
    if chance g 50 then Sel (lam (fresh g "q") (Const (Kola.Value.Bool true)), Extent "P")
    else Extent "P"
  in
  let filtered =
    if chance g 60 then
      let w = fresh g "w" in
      Sel (lam w (pred { inner with persons = [ w ] }), source)
    else source
  in
  App (lam v body, filtered)

let suite ~count ~seed ~depth =
  List.init count (fun i -> query ~seed:(seed + (7919 * i)) ~depth)

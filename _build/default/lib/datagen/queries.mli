(** Type-directed random AQUA query generator over the paper schema, used
    by the translator-correctness property and the Section 4.2 size
    experiment (which needs queries of controlled nesting depth m). *)

val query : seed:int -> depth:int -> Aqua.Ast.expr
(** A closed, well-typed query of nesting depth at most [depth];
    deterministic in [seed]. *)

val suite : count:int -> seed:int -> depth:int -> Aqua.Ast.expr list

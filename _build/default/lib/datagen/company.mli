(** A second schema and workload (Employee/Department), demonstrating that
    the algebra, translator, rules and optimizer are schema-generic. *)

val schema : Kola.Schema.t
(** Employee(ename*, salary, dept, mentors), Department(dname*, budget,
    dcity); extents E and D.  Starred attributes are annotated injective. *)

type params = {
  employees : int;
  departments : int;
  max_mentors : int;
  seed : int;
}

val default_params : params

type t = {
  employees : Kola.Value.t list;
  departments : Kola.Value.t list;
  db : (string * Kola.Value.t) list;
}

val generate : params -> t
val db : t -> (string * Kola.Value.t) list

val dept_roster_oql : string
(** A hidden join over this schema (the Garage Query's shape). *)

val rich_mentors_oql : string
(** A data-dependent nested query that must not bottom out. *)

lib/datagen/store.mli: Kola

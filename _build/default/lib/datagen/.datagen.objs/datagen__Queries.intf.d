lib/datagen/queries.mli: Aqua

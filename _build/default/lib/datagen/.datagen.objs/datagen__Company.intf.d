lib/datagen/company.mli: Kola

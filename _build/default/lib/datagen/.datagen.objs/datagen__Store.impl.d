lib/datagen/store.ml: Fmt Int64 Kola List Value

lib/datagen/company.ml: Fmt Kola List Schema Store Ty Value

lib/datagen/queries.ml: Aqua Fmt Kola List Store

(** The end-to-end optimizer: OQL → AQUA → KOLA → COKO normalization and
    hidden-join untangling → cost-based choice among candidate plans
    (original vs untangled × naive vs hashed backend).

    The {!report} is an explanation artifact: each phase records its
    output, and the trace names every rule fired. *)

type plan = {
  label : string;  (** "original" or "untangled" *)
  query : Kola.Term.query;
  backend : Kola.Eval.backend;
  dedup : Kola.Eval.dedup;
      (** deferred only offered for aggregate-free plans *)
  cost : Cost.t;
}

type report = {
  source : string option;
  aqua : Aqua.Ast.expr;
  translated : Kola.Term.query;
  normalized : Kola.Term.query;
  untangled : Kola.Term.query option;
  trace : Rewrite.Engine.trace;
  blocks : (string * bool) list;
  candidates : plan list;
  chosen : plan;
}

val backend_name : Kola.Eval.backend -> string
val dedup_name : Kola.Eval.dedup -> string

val contains_agg : Kola.Term.func -> bool
(** Whether a plan observes intermediate multiplicities (has an
    aggregate), which disables the deferred-dedup dimension. *)

val optimize :
  ?source:string -> db:(string * Kola.Value.t) list -> Aqua.Ast.expr -> report

val optimize_oql :
  ?extents:string list -> db:(string * Kola.Value.t) list -> string -> report
(** @raise Oql.Parser.Error on bad input. *)

val run : db:(string * Kola.Value.t) list -> report -> Kola.Value.t
(** Execute the chosen plan. *)

val pp_report : report Fmt.t

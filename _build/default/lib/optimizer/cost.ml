(* A simple calibration-based cost model: run the candidate plan on a
   (small) sample database and charge it for the work counters the
   evaluator maintains.  Tuples touched dominate; combinator dispatch is
   cheap.  This is deliberately an *executed* cost model — the paper leaves
   cost-based search to the optimizers that would host KOLA, and counters
   make the benches' cost claims implementation-independent. *)

open Kola

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

let weighted ~tuples ~func_calls ~pred_calls =
  float_of_int tuples +. (0.1 *. float_of_int func_calls)
  +. (0.1 *. float_of_int pred_calls)

let of_counters (c : Eval.counters) =
  {
    tuples = c.Eval.tuples;
    func_calls = c.Eval.func_calls;
    pred_calls = c.Eval.pred_calls;
    weighted =
      weighted ~tuples:c.Eval.tuples ~func_calls:c.Eval.func_calls
        ~pred_calls:c.Eval.pred_calls;
  }

(* Evaluate [q] against [db] under [backend]; return its result and cost. *)
let measure ?(backend = Eval.Naive) ?(dedup = Eval.Eager) ~db (q : Term.query)
    : Value.t * t =
  let ctx = Eval.ctx ~db ~backend ~dedup () in
  let v = Eval.run ctx q in
  (v, of_counters ctx.Eval.counters)

let pp ppf t =
  Fmt.pf ppf "tuples=%d funcs=%d preds=%d (weighted %.1f)" t.tuples
    t.func_calls t.pred_calls t.weighted

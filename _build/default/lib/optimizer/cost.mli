(** A calibration-based cost model: run the candidate plan on a sample
    database and charge it for the evaluator's work counters.  Tuples
    touched dominate; combinator dispatch is cheap. *)

type t = {
  tuples : int;
  func_calls : int;
  pred_calls : int;
  weighted : float;
}

val weighted : tuples:int -> func_calls:int -> pred_calls:int -> float
val of_counters : Kola.Eval.counters -> t

val measure :
  ?backend:Kola.Eval.backend ->
  ?dedup:Kola.Eval.dedup ->
  db:(string * Kola.Value.t) list ->
  Kola.Term.query ->
  Kola.Value.t * t

val pp : t Fmt.t

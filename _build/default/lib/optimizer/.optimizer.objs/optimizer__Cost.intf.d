lib/optimizer/cost.mli: Fmt Kola

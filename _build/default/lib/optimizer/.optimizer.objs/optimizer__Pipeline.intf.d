lib/optimizer/pipeline.mli: Aqua Cost Fmt Kola Rewrite

lib/optimizer/search.mli: Kola Rewrite

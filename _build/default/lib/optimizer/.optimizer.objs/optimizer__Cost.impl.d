lib/optimizer/cost.ml: Eval Fmt Kola Term Value

lib/optimizer/pipeline.ml: Aqua Coko Cost Eval Fmt Kola List Option Oql Pretty Rewrite Term Translate Value

lib/optimizer/search.ml: Cost Datagen Eval Hashtbl Kola List Option Pretty Rewrite Rules Term Value

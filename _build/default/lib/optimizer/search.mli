(** Exploration-based optimization: bounded breadth-first search of the
    rewrite space under the declarative catalog, deduplicating states
    modulo associativity.

    This is the "strategies for their use" dimension the paper leaves open
    (Section 1.1): uninformed search discovers the short derivations of
    Figures 4 and 6 from the rules alone, but the ≈25-firing hidden-join
    derivation is beyond any practical frontier — the paper's motivation
    for COKO rule blocks, quantified. *)

type config = {
  rules : Rewrite.Rule.t list;
  max_depth : int;   (** maximum derivation length *)
  max_states : int;  (** states expanded before giving up *)
  sample_db : (string * Kola.Value.t) list;  (** database used for costing *)
}

val default_config : config

val successors :
  ?schema:Kola.Schema.t ->
  Rewrite.Rule.t list -> Kola.Term.query -> (string * Kola.Term.query) list
(** Every single-firing successor: each rule at each matching position. *)

type state = {
  query : Kola.Term.query;
  path : string list;  (** rules fired, in order *)
  cost : float;
}

type outcome = { best : state; explored : int; frontier_exhausted : bool }

val explore : ?config:config -> Kola.Term.query -> outcome
(** Cheapest equivalent query found within the budget. *)

val reaches :
  ?config:config -> Kola.Term.query -> Kola.Term.query -> string list option
(** A derivation from the first query to the second (modulo associativity),
    if one exists within the budget. *)

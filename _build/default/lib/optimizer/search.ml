(* Exploration-based optimization over the declarative rule catalog:
   bounded breadth-first search of the rewrite space, deduplicating states
   modulo associativity, returning the cheapest plan found.

   This is the "strategies for their use" dimension the paper explicitly
   leaves open (Section 1.1) and later addresses with COKO: uninformed
   search discovers short derivations (Figure 4's T1K/T2K, Figure 6's code
   motion) from the catalog alone, but the 25-firing hidden-join derivation
   is far beyond any practical frontier — which is precisely the paper's
   motivation for rule blocks.  The ablation bench quantifies this. *)

open Kola

type config = {
  rules : Rewrite.Rule.t list;
  max_depth : int;     (** maximum derivation length *)
  max_states : int;    (** exploration budget (states expanded) *)
  sample_db : (string * Value.t) list;  (** database used for costing *)
}

let default_config =
  {
    rules = Rules.Catalog.all;
    max_depth = 6;
    max_states = 400;
    sample_db = Datagen.Store.db (Datagen.Store.tiny ());
  }

(* Enumerate every single-firing successor of [q]: each rule at each
   position.  Positions are enumerated with a skip counter: the strategy
   fires only at the k-th matching position, for k = 0, 1, ... until no
   position is left. *)
let successors ?schema (rules : Rewrite.Rule.t list) (q : Term.query) :
    (string * Term.query) list =
  let fun_rules, query_rules =
    List.partition
      (fun r ->
        match r.Rewrite.Rule.body with
        | Rewrite.Rule.Fun_rule _ | Rewrite.Rule.Pred_rule _ -> true
        | Rewrite.Rule.Query_rule _ -> false)
      rules
  in
  let from_query_rules =
    List.filter_map
      (fun r ->
        Option.map
          (fun q' -> (r.Rewrite.Rule.name, q'))
          (Rewrite.Rule.apply_query ?schema r q))
      query_rules
  in
  let at_kth r k =
    let remaining = ref k in
    let s tgt =
      match Rewrite.Strategy.of_rule ?schema r tgt with
      | Some t ->
        if !remaining = 0 then Some t
        else begin
          decr remaining;
          None
        end
      | None -> None
    in
    Option.map
      (fun body -> { q with Term.body })
      (Rewrite.Strategy.apply_func (Rewrite.Strategy.once_topdown s) q.Term.body)
  in
  let from_fun_rules =
    List.concat_map
      (fun r ->
        let rec collect k acc =
          if k > 64 then List.rev acc
          else
            match at_kth r k with
            | Some q' -> collect (k + 1) ((r.Rewrite.Rule.name, q') :: acc)
            | None -> List.rev acc
        in
        collect 0 [])
      fun_rules
  in
  from_query_rules @ from_fun_rules

type state = {
  query : Term.query;
  path : string list;  (** rules fired, outermost-first *)
  cost : float;
}

type outcome = {
  best : state;
  explored : int;       (** states expanded *)
  frontier_exhausted : bool;
      (** the whole reachable space within depth was covered *)
}

let canonical q =
  Pretty.query_to_string
    { q with Term.body = Term.reassoc_func q.Term.body }

let cost_of ~db q =
  match Cost.measure ~db q with
  | _, c -> c.Cost.weighted
  | exception Eval.Error _ -> infinity

(* Bounded BFS with global dedup; returns the cheapest state seen. *)
let explore ?(config = default_config) (q : Term.query) : outcome =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let db = config.sample_db in
  let start = { query = q; path = []; cost = cost_of ~db q } in
  Hashtbl.replace seen (canonical q) ();
  let best = ref start in
  let expanded = ref 0 in
  let exhausted = ref true in
  let rec level states depth =
    if depth >= config.max_depth || states = [] then ()
    else begin
      let next = ref [] in
      List.iter
        (fun st ->
          if !expanded >= config.max_states then exhausted := false
          else begin
            incr expanded;
            List.iter
              (fun (rule_name, q') ->
                let key = canonical q' in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  let st' =
                    {
                      query = q';
                      path = st.path @ [ rule_name ];
                      cost = cost_of ~db q';
                    }
                  in
                  if st'.cost < !best.cost then best := st';
                  next := st' :: !next
                end)
              (successors config.rules st.query)
          end)
        states;
      level (List.rev !next) (depth + 1)
    end
  in
  level [ start ] 0;
  { best = !best; explored = !expanded; frontier_exhausted = !exhausted }

(* Was [target] reached (modulo associativity) within the budget? *)
let reaches ?(config = default_config) (q : Term.query)
    (target : Term.query) : string list option =
  let found = ref None in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let target_key = canonical target in
  let expanded = ref 0 in
  Hashtbl.replace seen (canonical q) ();
  if canonical q = target_key then Some []
  else begin
    let rec level states depth =
      if depth >= config.max_depth || states = [] || !found <> None then ()
      else begin
        let next = ref [] in
        List.iter
          (fun (q0, path) ->
            if !expanded < config.max_states && !found = None then begin
              incr expanded;
              List.iter
                (fun (rule_name, q') ->
                  let key = canonical q' in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    let path' = path @ [ rule_name ] in
                    if key = target_key then found := Some path'
                    else next := (q', path') :: !next
                  end)
                (successors config.rules q0)
            end)
          states;
        level (List.rev !next) (depth + 1)
      end
    in
    level [ (q, []) ] 0;
    !found
  end

(** COKO rule blocks: "sets of rules that are used together, together with
    strategies for their firing" (Section 4.2).  Blocks express
    "conceptual transformations" — too large for one rule, small enough to
    reason about as a unit, such as each step of the hidden-join
    untangler. *)

type step =
  | Use of string list
      (** fire one of the named rules once, anywhere, outermost first *)
  | Seq of step list  (** atomic sequencing: a failing tail aborts all *)
  | Choice of step list  (** first step that applies *)
  | Repeat of step       (** while applicable; fails if never applied *)
  | Try of step          (** never fails *)

type t = { block_name : string; step : step }

val block : string -> step -> t

type outcome = {
  query : Kola.Term.query;
  trace : Rewrite.Engine.trace;
  applied : bool;
}

val default_lookup : string -> Rewrite.Rule.t
(** Resolve against the built-in catalog; ["-1"] suffixes flip. *)

val run :
  ?schema:Kola.Schema.t ->
  ?lookup:(string -> Rewrite.Rule.t) ->
  t -> Kola.Term.query -> outcome

val run_pipeline :
  ?schema:Kola.Schema.t ->
  ?lookup:(string -> Rewrite.Rule.t) ->
  t list -> Kola.Term.query -> outcome * (string * bool) list
(** Run blocks in sequence; inapplicable blocks leave the query unchanged
    (partial simplification survives, as the paper emphasises).  Returns
    per-block applicability. *)

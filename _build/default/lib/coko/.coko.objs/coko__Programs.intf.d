lib/coko/programs.mli: Block Kola

lib/coko/programs.ml: Block Kola

lib/coko/block.mli: Kola Rewrite

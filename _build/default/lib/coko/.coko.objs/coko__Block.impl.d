lib/coko/block.ml: Kola List Rewrite Rules

lib/coko/syntax.mli: Block Kola Rewrite

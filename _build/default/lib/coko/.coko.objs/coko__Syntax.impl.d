lib/coko/syntax.ml: Block Filename Fmt Kola List Rewrite Rules String

(** The paper's conceptual transformations as COKO blocks. *)

val simplify_rules : string list
(** Identity/projection/constant-folding housekeeping rule names. *)

val simplify : Block.t
val times_forms : Block.t

(** {1 The five steps of the Section 4.1 hidden-join strategy} *)

(** Step 1: rules 17/17b/18 + cleanup. *)
val breakup : Block.t

(** Step 2: rule 19. *)
val bottom_out : Block.t

(** Step 3: rules 20/21 + cleanup. *)
val pullup_nest : Block.t

(** Step 4: rules 22/22b/23. *)
val pullup_unnest : Block.t

(** Step 5: rule 24 + cleanup + ×-forms. *)
val absorb_join : Block.t

val hidden_join_steps : Block.t list

val hidden_join :
  Kola.Term.query -> Block.outcome * (string * bool) list
(** Run all five steps; the boolean list reports which applied. *)

val code_motion : Block.t
(** The Figure 6 derivation: rules 13, 14, 15, 16, then cleanup. *)

(** Figure 4, T1K. *)
val compose_iterates : Block.t

(** Figure 4, T2K's second half. *)
val decompose_predicate : Block.t

(** The paper's "convert predicates to CNF" example block. *)
val to_cnf : Block.t

val by_name : (string * Block.t) list

(* COKO rule blocks (Section 4.2: "rule blocks; sets of rules that are used
   together, together with strategies for their firing").

   A block is a firing strategy over named rules.  Blocks compose into
   "conceptual transformations" — transformations too large for one rule but
   small enough to think about as a unit, such as each of the five steps of
   the hidden-join untangler. *)

open Kola.Term

type step =
  | Use of string list
      (** fire any of the named rules once, anywhere (outermost first) *)
  | Seq of step list
  | Choice of step list  (** first step that applies *)
  | Repeat of step       (** as long as it applies *)
  | Try of step          (** apply if possible; never fails *)

type t = { block_name : string; step : step }

let block block_name step = { block_name; step }

type outcome = {
  query : query;
  trace : Rewrite.Engine.trace;
  applied : bool;
}

(* Rule names are resolved through a lookup so that text-defined COKO files
   (see {!Syntax}) can add rules beyond the built-in catalog. *)
let default_lookup name =
  match Rules.Catalog.rules [ name ] with
  | [ r ] -> r
  | _ -> invalid_arg name

(* Run one engine firing restricted to [names]. *)
let fire_once ?schema ~lookup names (q : query) =
  Rewrite.Engine.step_once ?schema (List.map lookup names) q

let rec run_step ?schema ~lookup step q trace =
  match step with
  | Use names -> (
    match fire_once ?schema ~lookup names q with
    | Some (rule_name, q') ->
      Some (q', { Rewrite.Engine.rule_name; result = q' } :: trace)
    | None -> None)
  | Seq steps ->
    let rec go steps q trace =
      match steps with
      | [] -> Some (q, trace)
      | s :: rest -> (
        match run_step ?schema ~lookup s q trace with
        | Some (q', trace') -> go rest q' trace'
        | None -> None)
    in
    go steps q trace
  | Choice steps ->
    List.find_map (fun s -> run_step ?schema ~lookup s q trace) steps
  | Repeat s ->
    let rec go q trace applied fuel =
      if fuel = 0 then if applied then Some (q, trace) else None
      else
        match run_step ?schema ~lookup s q trace with
        | Some (q', trace') -> go q' trace' true (fuel - 1)
        | None -> if applied then Some (q, trace) else None
    in
    go q trace false 10_000
  | Try s -> (
    match run_step ?schema ~lookup s q trace with
    | Some _ as res -> res
    | None -> Some (q, trace))

let run ?schema ?(lookup = default_lookup) (t : t) (q : query) : outcome =
  match run_step ?schema ~lookup t.step q [] with
  | Some (q', trace) -> { query = q'; trace = List.rev trace; applied = true }
  | None -> { query = q; trace = []; applied = false }

(* Run blocks in sequence; blocks that do not apply leave the query
   unchanged (the paper's point that failed strategies still leave behind
   the simplifications of earlier steps). *)
let run_pipeline ?schema ?lookup (blocks : t list) (q : query) :
    outcome * (string * bool) list =
  let q, rev_trace, applied_list =
    List.fold_left
      (fun (q, trace, applied) b ->
        let o = run ?schema ?lookup b q in
        (o.query, List.rev_append o.trace trace, (b.block_name, o.applied) :: applied))
      (q, [], []) blocks
  in
  ( { query = q; trace = List.rev rev_trace; applied = applied_list <> [] },
    List.rev applied_list )

(* The conceptual transformations of the paper, as COKO blocks.

   [hidden_join] is the five-step strategy of Section 4.1; [code_motion]
   drives the Figure 6 derivation; [simplify] is the general cleanup block
   every step relies on (rules 1-10 plus housekeeping). *)

open Block

(* Housekeeping normalization: identities, projections, constant folding. *)
let simplify_rules =
  [
    "r1"; "r2"; "r3"; "r4"; "r5"; "r5c"; "r6t"; "r6f"; "r8"; "r9"; "r10";
    "hk-times-id"; "hk-and-false"; "hk-or-true"; "hk-or-false"; "hk-inv-inv";
    "hk-conv-conv"; "hk-con-true"; "hk-con-false"; "hk-con-same";
  ]

let simplify = block "simplify" (Try (Repeat (Use simplify_rules)))

(* Reach the paper's printed ×-forms: ⟨f ∘ π1, g ∘ π2⟩ ⇒ f × g. *)
let times_forms =
  block "times-forms"
    (Try (Repeat (Use [ "hk-times"; "hk-times-l"; "hk-times-r"; "hk-times-id" ])))

(* Step 1: break up complex iterates (rules 17/17b/18 + cleanup). *)
let breakup =
  block "breakup"
    (Seq
       [
         Repeat (Use [ "r17"; "r17b" ]);
         Try (Repeat (Use ("r18" :: simplify_rules)));
       ])

(* Step 2: bottom out iterate(Kp T, ⟨id, Kf(B)⟩) ! A with a nest of a join. *)
let bottom_out = block "bottom-out" (Use [ "r19"; "r19f" ])

(* Step 3: pull the nest to the top (rules 20/21 + cleanup). *)
let pullup_nest =
  block "pullup-nest"
    (Seq
       [
         Repeat (Use [ "r20"; "r21" ]);
         Try (Repeat (Use ("r3" :: simplify_rules)));
       ])

(* Step 4: pull unnests up, just below the nest (rules 22/22b/23). *)
let pullup_unnest =
  block "pullup-unnest" (Try (Repeat (Use [ "r22"; "r22b"; "r23" ])))

(* Step 5: absorb iterates into the join (rule 24 + cleanup + ×-forms). *)
let absorb_join =
  block "absorb-join"
    (Seq
       [
         Repeat (Use [ "r24" ]);
         Try (Repeat (Use simplify_rules));
         Try (Repeat (Use [ "hk-times"; "hk-times-l"; "hk-times-r" ]));
       ])

(* The full five-step hidden-join untangler. *)
let hidden_join_steps =
  [ breakup; bottom_out; pullup_nest; pullup_unnest; absorb_join ]

let hidden_join (q : Kola.Term.query) = Block.run_pipeline hidden_join_steps q

(* Figure 6: code motion for nested queries whose inner predicate examines
   only the environment.  Rules 13, 14, 15, 16 then cleanup (the final steps
   of Figure 6 are 14⁻¹, 9, 4, 10, 8). *)
let code_motion =
  block "code-motion"
    (Seq
       [
         Try (Repeat (Use [ "r13"; "r14" ]));
         Use [ "r15" ];
         Try (Repeat (Use [ "r16" ]));
         Try (Repeat (Use ("r14-1" :: simplify_rules)));
       ])

(* Figure 4's two derivations as blocks. *)
let compose_iterates =
  block "compose-iterates"
    (Seq [ Repeat (Use [ "r11" ]); Try (Repeat (Use simplify_rules)) ])

let decompose_predicate =
  block "decompose-predicate"
    (Seq [ Try (Repeat (Use [ "r13" ])); Try (Repeat (Use [ "r12-1" ])) ])

(* "Convert predicates to CNF" — one of the paper's example rule blocks. *)
let to_cnf =
  block "to-cnf"
    (Try
       (Repeat
          (Use
             [
               "hk-demorgan-and"; "hk-demorgan-or"; "hk-inv-inv";
               "hk-oplus-and"; "hk-oplus-or";
             ])))

let by_name =
  [
    ("simplify", simplify);
    ("times-forms", times_forms);
    ("breakup", breakup);
    ("bottom-out", bottom_out);
    ("pullup-nest", pullup_nest);
    ("pullup-unnest", pullup_unnest);
    ("absorb-join", absorb_join);
    ("code-motion", code_motion);
    ("compose-iterates", compose_iterates);
    ("decompose-predicate", decompose_predicate);
    ("to-cnf", to_cnf);
  ]

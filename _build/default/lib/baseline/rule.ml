(* Starburst/EXODUS-style rules over the variable-based AQUA representation
   (Section 2 of the paper).

   Each rule carries:
   - a [head] routine ("condition function" in Starburst, "condition" in
     EXODUS): arbitrary code deciding applicability, here typically doing
     free-variable / environmental analysis;
   - a [body] routine ("action routine" / "support function"): arbitrary
     code building the replacement expression, here typically doing
     α-renaming and capture-avoiding substitution.

   This is precisely the design the paper criticises: the engine below is
   only as correct as these closures, and nothing about them is declarative
   or analysable. *)

type t = {
  name : string;
  description : string;
  head : Aqua.Ast.expr -> bool;
      (** may the rule fire on this (sub)expression? *)
  body : Aqua.Ast.expr -> Aqua.Ast.expr option;
      (** transform; may still decline (head routines are often partial) *)
}

let make ~name ~description ~head ~body = { name; description; head; body }

let apply t e = if t.head e then t.body e else None

lib/baseline/monolithic.mli: Kola

lib/baseline/rule.ml: Aqua

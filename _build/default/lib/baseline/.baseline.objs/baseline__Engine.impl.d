lib/baseline/engine.ml: Aqua List Option Rule

lib/baseline/rule.mli: Aqua

lib/baseline/engine.mli: Aqua Rule

lib/baseline/monolithic.ml: Kola List Option Value

lib/baseline/catalog.ml: Aqua Rule String

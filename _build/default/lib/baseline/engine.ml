(* A miniature Starburst-style rewrite driver over AQUA expressions:
   outermost-first traversal firing the first applicable rule. *)

open Aqua.Ast

type step = { rule_name : string; result : expr }

type outcome = { expr : expr; trace : step list }

(* Try [rw] on [e]'s subexpressions, leftmost-outermost. *)
let rec rewrite_once rw e =
  match rw e with
  | Some e' -> Some e'
  | None -> (
    match e with
    | Var _ | Const _ | Extent _ -> None
    | Path (e1, a) -> Option.map (fun e1 -> Path (e1, a)) (rewrite_once rw e1)
    | Flatten e1 -> Option.map (fun e1 -> Flatten e1) (rewrite_once rw e1)
    | Not e1 -> Option.map (fun e1 -> Not e1) (rewrite_once rw e1)
    | Agg (g, e1) -> Option.map (fun e1 -> Agg (g, e1)) (rewrite_once rw e1)
    | Pair (a, b) -> (
      match rewrite_once rw a with
      | Some a' -> Some (Pair (a', b))
      | None -> Option.map (fun b' -> Pair (a, b')) (rewrite_once rw b))
    | Bin (op, a, b) -> (
      match rewrite_once rw a with
      | Some a' -> Some (Bin (op, a', b))
      | None -> Option.map (fun b' -> Bin (op, a, b')) (rewrite_once rw b))
    | If (c, t, e1) -> (
      match rewrite_once rw c with
      | Some c' -> Some (If (c', t, e1))
      | None -> (
        match rewrite_once rw t with
        | Some t' -> Some (If (c, t', e1))
        | None -> Option.map (fun e' -> If (c, t, e')) (rewrite_once rw e1)))
    | App (l, e1) -> (
      match rewrite_once rw l.body with
      | Some b' -> Some (App ({ l with body = b' }, e1))
      | None -> Option.map (fun e1 -> App (l, e1)) (rewrite_once rw e1))
    | Sel (l, e1) -> (
      match rewrite_once rw l.body with
      | Some b' -> Some (Sel ({ l with body = b' }, e1))
      | None -> Option.map (fun e1 -> Sel (l, e1)) (rewrite_once rw e1))
    | Join (p, f, a, b) -> (
      match rewrite_once rw p.body2 with
      | Some p' -> Some (Join ({ p with body2 = p' }, f, a, b))
      | None -> (
        match rewrite_once rw f.body2 with
        | Some f' -> Some (Join (p, { f with body2 = f' }, a, b))
        | None -> (
          match rewrite_once rw a with
          | Some a' -> Some (Join (p, f, a', b))
          | None -> Option.map (fun b' -> Join (p, f, a, b')) (rewrite_once rw b))))
    | SetLit xs ->
      let rec go acc = function
        | [] -> None
        | x :: rest -> (
          match rewrite_once rw x with
          | Some x' -> Some (List.rev_append acc (x' :: rest))
          | None -> go (x :: acc) rest)
      in
      Option.map (fun xs -> SetLit xs) (go [] xs))

let step_once rules e =
  List.find_map
    (fun r ->
      Option.map (fun e' -> (r.Rule.name, e')) (rewrite_once (Rule.apply r) e))
    rules

let run ?(fuel = 1_000) rules e : outcome =
  let rec go n e trace =
    if n = 0 then (e, trace)
    else
      match step_once rules e with
      | Some (name, e') -> go (n - 1) e' ({ rule_name = name; result = e' } :: trace)
      | None -> (e, trace)
  in
  let e', trace = go fuel e [] in
  { expr = e'; trace = List.rev trace }

(** A monolithic hidden-join rule in the style of [12], for the ablation
    against the gradual five-step strategy: its head routine dives to
    unbounded depth just to decide applicability, its body routine handles
    only the nesting shapes its author anticipated (depths one and two),
    and on failure the query is left untouched. *)

type layer = { flattened : bool; pred : Kola.Term.pred; func : Kola.Term.func }

type recognition = {
  outer : Kola.Term.func;
  layers : layer list;  (** outermost first *)
  base : Kola.Value.t;  (** the constant set at the bottom *)
  nodes_visited : int;  (** head-routine work *)
}

val recognize : Kola.Term.query -> recognition option
(** The head routine: is this a Figure 7 hidden join, at any depth? *)

val transform : Kola.Term.query -> Kola.Term.query option
(** The body routine: direct nest-of-join construction; [None] beyond the
    anticipated depths (the generality gap). *)

val match_cost : Kola.Term.query -> int
(** Nodes the head routine visits just to decide. *)

(** A miniature Starburst-style rewrite driver over AQUA expressions:
    leftmost-outermost traversal firing the first applicable rule. *)

type step = { rule_name : string; result : Aqua.Ast.expr }
type outcome = { expr : Aqua.Ast.expr; trace : step list }

val rewrite_once :
  (Aqua.Ast.expr -> Aqua.Ast.expr option) ->
  Aqua.Ast.expr ->
  Aqua.Ast.expr option
(** Apply a rewrite at the first (outermost) position where it succeeds. *)

val step_once :
  Rule.t list -> Aqua.Ast.expr -> (string * Aqua.Ast.expr) option

val run : ?fuel:int -> Rule.t list -> Aqua.Ast.expr -> outcome

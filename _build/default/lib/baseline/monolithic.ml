(* A monolithic hidden-join rule, in the style the paper criticises
   (Section 4.2's discussion of [12]):

   - its HEAD ROUTINE must "dive" into the query tree to unbounded depth to
     decide whether the query has the Figure 7 form at all (the structural
     matching of unification is insufficient);
   - its BODY ROUTINE constructs the final nest-of-join directly, and —
     exactly as the paper predicts of such rules — only handles the nesting
     depths its author anticipated (here: one or two iter layers; deeper
     queries are recognised but not transformed);
   - when it fails, the query is left exactly as it was: "complex rules do
     not simplify queries".

   Contrast {!Coko.Programs.hidden_join}: unbounded depth, each step a
   certified rule, and failed steps still leave simplifications behind. *)

open Kola
open Kola.Term

type layer = {
  flattened : bool;       (* was there a flat above this iter? *)
  pred : pred;
  func : func;
}

type recognition = {
  outer : func;            (* the paired function j, usually id *)
  layers : layer list;     (* outermost first *)
  base : Value.t;          (* the constant set B at the bottom *)
  nodes_visited : int;     (* head-routine work, for the ablation bench *)
}

(* The head routine: recognise
     iterate(Kp T, ⟨j, h1 ∘ iter(p1,f1) ∘ ⟨id, h2 ∘ iter(p2,f2) ∘ ... ∘
                                              ⟨id, Kf(B)⟩ ...⟩⟩)
   diving as deep as the nesting goes. *)
let recognize (q : query) : recognition option =
  let visited = ref 0 in
  let touch f = incr visited; f in
  let rec dive (f : func) (layers : layer list) =
    match touch f with
    | Kf base -> Some (List.rev layers, base)
    | Compose _ -> (
      match List.map touch (unchain f) with
      | [ Flat; Iter (p, fn); Pairf (Id, rest) ] ->
        dive rest ({ flattened = true; pred = p; func = fn } :: layers)
      | [ Iter (p, fn); Pairf (Id, rest) ] ->
        dive rest ({ flattened = false; pred = p; func = fn } :: layers)
      | _ -> None)
    | _ -> None
  in
  match q.body with
  | Iterate (Kp true, Pairf (outer, inner)) ->
    Option.map
      (fun (layers, base) ->
        { outer; layers; base; nodes_visited = !visited })
      (dive inner [])
  | _ -> None

(* The body routine: hard-coded transformations for one and two layers.
   (A one-layer hidden join iterate(KpT, ⟨id, iter(p, f) ∘ ⟨id, Kf B⟩⟩) ! A
   becomes nest(π1,π2) ∘ (iterate(p, ⟨π1,f⟩) × id) ∘ ⟨join(KpT,id), π1⟩,
   then the iterate is absorbed into the join — rule 24's effect, spelled
   out by hand.) *)
let transform (q : query) : query option =
  match recognize q with
  | None -> None
  | Some { outer = Id; layers = [ l1 ]; base; _ } ->
    let body =
      chain
        [
          Nest (Pi1, Pi2);
          (if l1.flattened then Times (Unnest (Pi1, Pi2), Id) else Id);
          Pairf (Join (Oplus (l1.pred, Pairf (Pi1, Pi2)), Pairf (Pi1, l1.func)), Pi1);
        ]
      |> fun f -> chain (List.filter (fun g -> g <> Id) (unchain f))
    in
    (* join pred p expects [a, y]; join feeds [a, b]: adapt with the same
       shapes rule 24 would produce.  p ⊕ ⟨π1, π2⟩ = p. *)
    let body =
      (* simplify p ⊕ ⟨π1, π2⟩ to p and ⟨π1, f⟩ as the pair producer *)
      match body with
      | Compose (a, Pairf (Join (Oplus (p, Pairf (Pi1, Pi2)), pf), pi)) ->
        Compose (a, Pairf (Join (p, pf), pi))
      | Pairf (Join (Oplus (p, Pairf (Pi1, Pi2)), pf), pi) ->
        Pairf (Join (p, pf), pi)
      | b -> b
    in
    Some (query body (Value.Pair (q.arg, base)))
  | Some { outer = Id; layers = [ l1; l2 ]; base; _ }
    when (not l1.flattened) && not l2.flattened ->
    (* two unflattened layers: filter-map over a join *)
    let body =
      chain
        [
          Nest (Pi1, Pi2);
          Times (Iterate (l1.pred, Pairf (Pi1, l1.func)), Id);
          Pairf (Join (l2.pred, Pairf (Pi1, l2.func)), Pi1);
        ]
    in
    Some (query body (Value.Pair (q.arg, base)))
  | Some { outer = Id; layers = [ l1; l2 ]; base; _ }
    when l1.flattened && not l2.flattened ->
    (* the Garage-query shape: map layer over a filter layer *)
    let join_pred = l2.pred in
    let body =
      chain
        [
          Nest (Pi1, Pi2);
          Times (Unnest (Pi1, Pi2), Id);
          Times (Iterate (Kp true, Pairf (Pi1, l1.func)), Id);
          Times (Iterate (join_pred, Pairf (Pi1, l2.func)), Id);
          Pairf (Join (Kp true, Id), Pi1);
        ]
    in
    Some (query body (Value.Pair (q.arg, base)))
  | Some _ ->
    (* deeper nestings: recognised, not handled — the generality gap *)
    None

(* Head-routine cost of merely *deciding* applicability. *)
let match_cost (q : query) : int =
  match recognize q with
  | Some r -> r.nodes_visited
  | None -> 1

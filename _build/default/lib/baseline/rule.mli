(** Starburst/EXODUS-style rules over the variable-based AQUA
    representation: applicability and transformation are arbitrary code
    (the "head routines" and "body routines" of the paper's Section 1.1) —
    precisely the design the paper criticises. *)

type t = {
  name : string;
  description : string;
  head : Aqua.Ast.expr -> bool;
      (** condition function / "condition": may the rule fire here? *)
  body : Aqua.Ast.expr -> Aqua.Ast.expr option;
      (** action routine / "support function": build the replacement *)
}

val make :
  name:string ->
  description:string ->
  head:(Aqua.Ast.expr -> bool) ->
  body:(Aqua.Ast.expr -> Aqua.Ast.expr option) ->
  t

val apply : t -> Aqua.Ast.expr -> Aqua.Ast.expr option

(* The paper's Section 2 transformations implemented the Starburst way:
   over AQUA, with head and body routines.

   Contrast each with its KOLA counterpart:
   - [t1_compose_maps] needs *expression composition* (substituting one
     expression for the free variable of another) — KOLA rule 11 is one
     declarative pattern.
   - [t2_decompose_predicate] needs *variable renaming* to recognise the
     map's body inside the selection predicate — KOLA rules 13/12⁻¹ need
     none.
   - [code_motion] needs *environmental analysis* (is the predicate free of
     the inner variable?) — in KOLA the distinction is structural (π1 vs
     π2), decided by unification alone (rule 15). *)

open Aqua.Ast

(* T1 (Figure 1): app(λa.B1)(app(λp.B2)(S)) ⟹ app(λp.B1[a := B2])(S).
   The body routine performs capture-avoiding expression composition. *)
let t1_compose_maps =
  Rule.make ~name:"aqua-t1" ~description:"compose nested app bodies"
    ~head:(function
      | App (_, App (_, _)) -> true
      | _ -> false)
    ~body:(function
      | App (outer, App (inner, set)) ->
        let body' = Aqua.Vars.subst outer.v inner.body outer.body in
        Some (App ({ v = inner.v; body = Aqua.Vars.subst inner.v (Var inner.v) body' }, set))
      | _ -> None)

(* T2 (Figure 1): app(λx.F)(sel(λp.P)(S)) ⟹ sel(λa.P')(app(λp.F')(S))
   provided P is a comparison whose left side is exactly the app's body
   modulo α-renaming (the paper's point: recognising this "subfunction"
   requires renaming machinery). *)
let t2_decompose_predicate =
  Rule.make ~name:"aqua-t2"
    ~description:"swap a map with a selection over the mapped value"
    ~head:(function
      | App (f, Sel (p, _)) -> (
        match p.body with
        | Bin ((Gt | Leq | Lt | Geq | Eq), lhs, rhs) ->
          (* head routine: α-compare the app body against the comparison's
             left operand, and require the right operand closed *)
          Aqua.Vars.alpha_equal
            (Aqua.Vars.subst f.v (Var "$x") f.body)
            (Aqua.Vars.subst p.v (Var "$x") lhs)
          && Aqua.Vars.S.is_empty (Aqua.Vars.free_vars rhs)
        | _ -> false)
      | _ -> false)
    ~body:(function
      | App (f, Sel (p, set)) -> (
        match p.body with
        | Bin (op, _, rhs) ->
          let a = Aqua.Vars.fresh (Aqua.Vars.free_vars rhs) in
          Some
            (Sel
               ( { v = a; body = Bin (op, Var a, rhs) },
                 App ({ v = p.v; body = Aqua.Vars.subst f.v (Var p.v) f.body }, set) ))
        | _ -> None)
      | _ -> None)

(* Code motion (Section 2.2, [2]): app(λp.[p, sel(λc.P)(E)])(S) ⟹
   app(λp. if P then [p, E] else [p, {}])(S), *only when c is not free in
   P*.  The head routine is the environmental analysis the paper says the
   rule cannot avoid over this representation: A4 passes it, A3 fails it,
   despite the two queries being structurally identical. *)
let code_motion =
  Rule.make ~name:"aqua-code-motion"
    ~description:"hoist an inner selection whose predicate ignores its variable"
    ~head:(function
      | App (outer, _) -> (
        match outer.body with
        | Pair (Var p, Sel (inner, _)) ->
          String.equal p outer.v && not (Aqua.Vars.is_free inner.v inner.body)
        | _ -> false)
      | _ -> false)
    ~body:(function
      | App (outer, set) -> (
        match outer.body with
        | Pair (Var p, Sel (inner, source)) ->
          Some
            (App
               ( {
                   v = outer.v;
                   body =
                     If
                       ( inner.body,
                         Pair (Var p, source),
                         Pair (Var p, SetLit []) );
                 },
                 set ))
        | _ -> None)
      | _ -> None)

(* Selection cascade: sel(λx.P)(sel(λy.Q)(S)) ⟹ sel(λx.P and Q[y:=x])(S).
   Needs substitution (a body routine) to merge the predicates. *)
let sel_cascade =
  Rule.make ~name:"aqua-sel-cascade" ~description:"merge stacked selections"
    ~head:(function
      | Sel (_, Sel (_, _)) -> true
      | _ -> false)
    ~body:(function
      | Sel (outer, Sel (inner, set)) ->
        let merged = Bin (And, outer.body, Aqua.Vars.subst inner.v (Var outer.v) inner.body) in
        Some (Sel ({ v = outer.v; body = merged }, set))
      | _ -> None)

(* flatten(app(λx.{e})(S)) ⟹ app(λx.e)(S) for singleton-set bodies — an
   example of a rule whose head routine must inspect body shape. *)
let flatten_singleton =
  Rule.make ~name:"aqua-flatten-singleton"
    ~description:"flatten over singleton sets"
    ~head:(function
      | Flatten (App (l, _)) -> (
        match l.body with SetLit [ _ ] -> true | _ -> false)
      | _ -> false)
    ~body:(function
      | Flatten (App (l, set)) -> (
        match l.body with
        | SetLit [ e ] -> Some (App ({ l with body = e }, set))
        | _ -> None)
      | _ -> None)

let all =
  [ t1_compose_maps; t2_decompose_predicate; code_motion; sel_cascade;
    flatten_singleton ]

(* The full rule pool, indexed by name.

   The paper reports a pool of 500 LP-verified rules from which an optimizer
   draws; this catalog is our pool, and {!Cert} is our verification
   analogue.  [r13_paper] is deliberately excluded from [all]: it is the
   boundary-unsound printed form kept only to show the harness rejecting
   it. *)

let figure5 = Basic.figure5
let figure8 = Hidden_join.figure8
let housekeeping = Basic.housekeeping
let preconditioned = Precond.all
let extended = Extra.all

let all = figure5 @ figure8 @ housekeeping @ preconditioned @ extended

let find name =
  List.find_opt (fun r -> String.equal r.Rewrite.Rule.name name) all

let find_exn name =
  match find name with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "Catalog.find_exn: unknown rule %s" name)

(* Look up several rules at once, flipping those suffixed with "-1"
   ("right-to-left interpretations", as the paper calls them). *)
let rules names =
  List.map
    (fun name ->
      match Filename.chop_suffix_opt ~suffix:"-1" name with
      | Some base when Option.is_some (find base) ->
        Rewrite.Rule.flip (find_exn base)
      | _ -> find_exn name)
    names

let names () = List.map (fun r -> r.Rewrite.Rule.name) all

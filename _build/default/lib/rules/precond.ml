(* Precondition rules (Section 4.2).

   The paper's example:

     injective(f) ::
       (iterate(Kp(T), f) ! A) ∩ (iterate(Kp(T), f) ! B)
         ≡ iterate(Kp(T), f) ! (A ∩ B)

   As a function rule: inter ∘ (iterate(Kp T, f) × iterate(Kp T, f))
                         ≡ iterate(Kp T, f) ∘ inter,
   guarded by the [Injective] property, which {!Rewrite.Props} infers from
   schema annotations and closure rules — never from code. *)

open Kola.Term
open Rewrite

let f = Fhole "f"
let p = Phole "p"
let inj = [ { Rule.prop = Props.Injective; hole = "f" } ]

let inj_inter =
  Rule.fun_rule ~name:"inj-inter" ~preconditions:inj
    ~description:"injective maps commute with intersection"
    (Compose (Setop Inter, Times (Iterate (Kp true, f), Iterate (Kp true, f))))
    (Compose (Iterate (Kp true, f), Setop Inter))

let inj_diff =
  Rule.fun_rule ~name:"inj-diff" ~preconditions:inj
    ~description:"injective maps commute with difference"
    (Compose (Setop Diff, Times (Iterate (Kp true, f), Iterate (Kp true, f))))
    (Compose (Iterate (Kp true, f), Setop Diff))

(* Union needs no precondition; the pair is kept together as an ablation of
   how preconditions gate rules. *)
let map_union =
  Rule.fun_rule ~name:"map-union"
    ~description:"maps commute with union (no precondition needed)"
    (Compose (Setop Union, Times (Iterate (Kp true, f), Iterate (Kp true, f))))
    (Compose (Iterate (Kp true, f), Setop Union))

(* For injective f, selections on f-images can move inside the map:
   iterate(p ⊕ f, f) counts each source exactly once, so
   cnt ∘ iterate(Kp T, f) ≡ cnt  (count is preserved by injective maps). *)
let inj_count =
  Rule.fun_rule ~name:"inj-count" ~preconditions:inj
    ~description:"injective maps preserve cardinality"
    (Compose (Agg Count, Iterate (Kp true, f)))
    (Agg Count)

(* Totality-guarded rule: con(p, f, f) ≡ f needs no guard, but pushing a
   possibly-failing f out of a guarded branch does.  For total f:
   con(p, f ∘ g, f ∘ h) ≡ f ∘ con(p, g, h). *)
let total_con_factor =
  Rule.fun_rule ~name:"total-con-factor"
    ~preconditions:[ { Rule.prop = Props.Total; hole = "f" } ]
    ~description:"factor a total function out of a conditional"
    (Con (p, Compose (f, Fhole "g"), Compose (f, Fhole "h")))
    (Compose (f, Con (p, Fhole "g", Fhole "h")))

let all = [ inj_inter; inj_diff; map_union; inj_count; total_con_factor ]

(** Precondition-guarded rules (Section 4.2): properties established by
    inference over schema annotations, never by code. *)

val inj_inter : Rewrite.Rule.t
(** The paper's example: injective maps commute with intersection. *)

val inj_diff : Rewrite.Rule.t

(** No precondition needed — kept as the contrast case. *)
val map_union : Rewrite.Rule.t

(** Injective maps preserve cardinality. *)
val inj_count : Rewrite.Rule.t

val total_con_factor : Rewrite.Rule.t
val all : Rewrite.Rule.t list

(** The rule pool, indexed by name — this reproduction's analogue of the
    paper's 500-rule pool an optimizer draws from.

    [Basic.r13_paper] (the boundary-unsound printed form of rule 13) is
    deliberately excluded from [all]; it exists only to demonstrate {!Cert}
    rejecting it. *)

(** Rules 1-16 as printed. *)
val figure5 : Rewrite.Rule.t list

(** Rules 17-24 plus the 17b/22b variants. *)
val figure8 : Rewrite.Rule.t list
val housekeeping : Rewrite.Rule.t list
val preconditioned : Rewrite.Rule.t list

(** The extended pool of {!Extra} laws. *)
val extended : Rewrite.Rule.t list

val all : Rewrite.Rule.t list
val find : string -> Rewrite.Rule.t option

val find_exn : string -> Rewrite.Rule.t
(** @raise Invalid_argument on unknown names. *)

val rules : string list -> Rewrite.Rule.t list
(** Resolve several names at once; a ["-1"] suffix yields the flipped rule
    (the paper's "right-to-left interpretations"). *)

val names : unit -> string list

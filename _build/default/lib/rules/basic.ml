(* The rules of Figure 5 (rules 1-16), exactly as printed (with one repair,
   see [r13]), plus the housekeeping identities the paper uses silently in
   its derivations (×-introduction, commuted variants, and so on).

   Hole naming: f, g, h, j for functions; p, q for predicates; k, b for
   values; A, B for query arguments. *)

open Kola
open Kola.Term
open Rewrite

let f = Fhole "f"
let g = Fhole "g"
let h = Fhole "h"
let p = Phole "p"
let q = Phole "q"
let k = Value.Hole "k"

(* 1.  f ∘ id ≡ f *)
let r1 =
  Rule.fun_rule ~name:"r1" ~description:"f \u{2218} id \u{2261} f"
    (Compose (f, Id)) f

(* 2.  id ∘ f ≡ f *)
let r2 =
  Rule.fun_rule ~name:"r2" ~description:"id \u{2218} f \u{2261} f"
    (Compose (Id, f)) f

(* 3.  ⟨π1, π2⟩ ≡ id *)
let r3 =
  Rule.fun_rule ~name:"r3" ~description:"\u{27E8}\u{3C0}1, \u{3C0}2\u{27E9} \u{2261} id"
    (Pairf (Pi1, Pi2)) Id

(* 4.  p ⊕ id ≡ p *)
let r4 =
  Rule.pred_rule ~name:"r4" ~description:"p \u{2295} id \u{2261} p"
    (Oplus (p, Id)) p

(* 5.  Kp(T) & p ≡ p *)
let r5 =
  Rule.pred_rule ~name:"r5" ~description:"Kp(T) & p \u{2261} p"
    (Andp (Kp true, p)) p

(* 5'. p & Kp(T) ≡ p (commuted variant, used silently by the paper). *)
let r5c =
  Rule.pred_rule ~name:"r5c" ~description:"p & Kp(T) \u{2261} p"
    (Andp (p, Kp true)) p

(* 6.  Kp(b) ⊕ f ≡ Kp(b); booleans are not holes, so one rule per constant. *)
let r6t =
  Rule.pred_rule ~name:"r6t" ~description:"Kp(T) \u{2295} f \u{2261} Kp(T)"
    (Oplus (Kp true, f)) (Kp true)

let r6f =
  Rule.pred_rule ~name:"r6f" ~description:"Kp(F) \u{2295} f \u{2261} Kp(F)"
    (Oplus (Kp false, f)) (Kp false)

(* 7.  gt⁻¹ ≡ leq (⁻¹ is negation). *)
let r7 =
  Rule.pred_rule ~name:"r7" ~description:"gt\u{207B}\u{B9} \u{2261} leq"
    (Inv Gt) Leq

(* 7'. leq⁻¹ ≡ gt *)
let r7c =
  Rule.pred_rule ~name:"r7c" ~description:"leq\u{207B}\u{B9} \u{2261} gt"
    (Inv Leq) Gt

(* 8.  Kf(k) ∘ f ≡ Kf(k) *)
let r8 =
  Rule.fun_rule ~name:"r8" ~description:"Kf(k) \u{2218} f \u{2261} Kf(k)"
    (Compose (Kf k, f)) (Kf k)

(* 9.  π1 ∘ ⟨f, g⟩ ≡ f *)
let r9 =
  Rule.fun_rule ~name:"r9" ~description:"\u{3C0}1 \u{2218} \u{27E8}f, g\u{27E9} \u{2261} f"
    (Compose (Pi1, Pairf (f, g))) f

(* 10. π2 ∘ ⟨f, g⟩ ≡ g *)
let r10 =
  Rule.fun_rule ~name:"r10" ~description:"\u{3C0}2 \u{2218} \u{27E8}f, g\u{27E9} \u{2261} g"
    (Compose (Pi2, Pairf (f, g))) g

(* 11. iterate(p, f) ∘ iterate(q, g) ≡ iterate(q & (p ⊕ g), f ∘ g) *)
let r11 =
  Rule.fun_rule ~name:"r11"
    ~description:"iterate fusion"
    (Compose (Iterate (p, f), Iterate (q, g)))
    (Iterate (Andp (q, Oplus (p, g)), Compose (f, g)))

(* 12. iterate(p, id) ∘ iterate(Kp(T), f) ≡ iterate(p ⊕ f, f) *)
let r12 =
  Rule.fun_rule ~name:"r12"
    ~description:"select after map \u{2261} filtered map"
    (Compose (Iterate (p, Id), Iterate (Kp true, f)))
    (Iterate (Oplus (p, f), f))

(* 13. p ⊕ ⟨f, Kf(k)⟩ ≡ Cp(pᵒ, k) ⊕ f.

   The paper prints Cp(p⁻¹, k) ⊕ f, which with ⁻¹ = negation (rule 7) is
   wrong on the boundary (p = gt, f!x = k).  With the converse pᵒ the rule
   is exact for every p.  [r13_paper] preserves the printed form; the
   certification harness demonstrates that it is unsound. *)
let r13 =
  Rule.pred_rule ~name:"r13"
    ~description:"curry a constant comparison (repaired with converse)"
    (Oplus (p, Pairf (f, Kf k)))
    (Oplus (Cp (Conv p, k), f))

let r13_paper =
  Rule.pred_rule ~name:"r13-paper"
    ~description:"curry a constant comparison (as printed; boundary-unsound)"
    (Oplus (p, Pairf (f, Kf k)))
    (Oplus (Cp (Inv p, k), f))

(* 14. p ⊕ (f ∘ g) ≡ (p ⊕ f) ⊕ g *)
let r14 =
  Rule.pred_rule ~name:"r14"
    ~description:"\u{2295} distributes over \u{2218}"
    (Oplus (p, Compose (f, g)))
    (Oplus (Oplus (p, f), g))

(* 15. iter(p ⊕ π1, π2) ≡ con(p ⊕ π1, π2, Kf(∅)) — the code-motion rule:
   when the iter's predicate only examines the environment, the loop is a
   conditional. *)
let r15 =
  Rule.fun_rule ~name:"r15"
    ~description:"code motion: environment-only predicate leaves the loop"
    (Iter (Oplus (p, Pi1), Pi2))
    (Con (Oplus (p, Pi1), Pi2, Kf (Value.set [])))

(* 16. con(p, f, g) ∘ h ≡ con(p ⊕ h, f ∘ h, g ∘ h) *)
let r16 =
  Rule.fun_rule ~name:"r16"
    ~description:"conditionals distribute over composition"
    (Compose (Con (p, f, g), h))
    (Con (Oplus (p, h), Compose (f, h), Compose (g, h)))

(* Housekeeping identities used silently in the paper's derivations. *)

(* ⟨f ∘ π1, g ∘ π2⟩ ≡ f × g, and its id-projection special cases; needed to
   reach the printed form of KG2 (join(in ⊕ (id × cars), id × grgs)). *)
let hk_times =
  Rule.fun_rule ~name:"hk-times"
    ~description:"\u{27E8}f \u{2218} \u{3C0}1, g \u{2218} \u{3C0}2\u{27E9} \u{2261} f \u{D7} g"
    (Pairf (Compose (f, Pi1), Compose (g, Pi2)))
    (Times (f, g))

let hk_times_l =
  Rule.fun_rule ~name:"hk-times-l"
    ~description:"\u{27E8}\u{3C0}1, g \u{2218} \u{3C0}2\u{27E9} \u{2261} id \u{D7} g"
    (Pairf (Pi1, Compose (g, Pi2)))
    (Times (Id, g))

let hk_times_r =
  Rule.fun_rule ~name:"hk-times-r"
    ~description:"\u{27E8}f \u{2218} \u{3C0}1, \u{3C0}2\u{27E9} \u{2261} f \u{D7} id"
    (Pairf (Compose (f, Pi1), Pi2))
    (Times (f, Id))

let hk_times_id =
  Rule.fun_rule ~name:"hk-times-id" ~description:"id \u{D7} id \u{2261} id"
    (Times (Id, Id)) Id

(* (f × g) ∘ (h × j) ≡ (f ∘ h) × (g ∘ j) *)
let hk_times_compose =
  Rule.fun_rule ~name:"hk-times-compose"
    ~description:"\u{D7} fuses through \u{2218}"
    (Compose (Times (f, g), Times (h, Fhole "j")))
    (Times (Compose (f, h), Compose (g, Fhole "j")))

(* (f × g) ∘ ⟨h, j⟩ ≡ ⟨f ∘ h, g ∘ j⟩ *)
let hk_times_pair =
  Rule.fun_rule ~name:"hk-times-pair"
    ~description:"\u{D7} after pair former"
    (Compose (Times (f, g), Pairf (h, Fhole "j")))
    (Pairf (Compose (f, h), Compose (g, Fhole "j")))

(* ⟨f, g⟩ ∘ h ≡ ⟨f ∘ h, g ∘ h⟩ *)
let hk_pair_compose =
  Rule.fun_rule ~name:"hk-pair-compose"
    ~description:"pair former distributes over \u{2218}"
    (Compose (Pairf (f, g), h))
    (Pairf (Compose (f, h), Compose (g, h)))

(* π1 ∘ (f × g) ≡ f ∘ π1 and π2 ∘ (f × g) ≡ g ∘ π2 *)
let hk_pi1_times =
  Rule.fun_rule ~name:"hk-pi1-times"
    ~description:"\u{3C0}1 \u{2218} (f \u{D7} g) \u{2261} f \u{2218} \u{3C0}1"
    (Compose (Pi1, Times (f, g)))
    (Compose (f, Pi1))

let hk_pi2_times =
  Rule.fun_rule ~name:"hk-pi2-times"
    ~description:"\u{3C0}2 \u{2218} (f \u{D7} g) \u{2261} g \u{2218} \u{3C0}2"
    (Compose (Pi2, Times (f, g)))
    (Compose (g, Pi2))

(* Boolean algebra of predicates. *)
let hk_and_comm =
  Rule.pred_rule ~name:"hk-and-comm" ~description:"& commutes"
    (Andp (p, q)) (Andp (q, p))

let hk_and_idem =
  Rule.pred_rule ~name:"hk-and-idem" ~description:"& idempotent"
    (Andp (p, p)) p

let hk_or_idem =
  Rule.pred_rule ~name:"hk-or-idem" ~description:"| idempotent"
    (Orp (p, p)) p

let hk_and_false =
  Rule.pred_rule ~name:"hk-and-false" ~description:"Kp(F) & p \u{2261} Kp(F)"
    (Andp (Kp false, p)) (Kp false)

let hk_or_true =
  Rule.pred_rule ~name:"hk-or-true" ~description:"Kp(T) | p \u{2261} Kp(T)"
    (Orp (Kp true, p)) (Kp true)

let hk_or_false =
  Rule.pred_rule ~name:"hk-or-false" ~description:"Kp(F) | p \u{2261} p"
    (Orp (Kp false, p)) p

let hk_inv_inv =
  Rule.pred_rule ~name:"hk-inv-inv" ~description:"(p\u{207B}\u{B9})\u{207B}\u{B9} \u{2261} p"
    (Inv (Inv p)) p

let hk_conv_conv =
  Rule.pred_rule ~name:"hk-conv-conv" ~description:"(p\u{1D52})\u{1D52} \u{2261} p"
    (Conv (Conv p)) p

let hk_conv_eq =
  Rule.pred_rule ~name:"hk-conv-eq" ~description:"eq\u{1D52} \u{2261} eq"
    (Conv Eq) Eq

(* De Morgan. *)
let hk_demorgan_and =
  Rule.pred_rule ~name:"hk-demorgan-and"
    ~description:"(p & q)\u{207B}\u{B9} \u{2261} p\u{207B}\u{B9} | q\u{207B}\u{B9}"
    (Inv (Andp (p, q)))
    (Orp (Inv p, Inv q))

let hk_demorgan_or =
  Rule.pred_rule ~name:"hk-demorgan-or"
    ~description:"(p | q)\u{207B}\u{B9} \u{2261} p\u{207B}\u{B9} & q\u{207B}\u{B9}"
    (Inv (Orp (p, q)))
    (Andp (Inv p, Inv q))

(* ⊕ distributes over the boolean formers. *)
let hk_oplus_and =
  Rule.pred_rule ~name:"hk-oplus-and"
    ~description:"(p & q) \u{2295} f \u{2261} (p \u{2295} f) & (q \u{2295} f)"
    (Oplus (Andp (p, q), f))
    (Andp (Oplus (p, f), Oplus (q, f)))

let hk_oplus_or =
  Rule.pred_rule ~name:"hk-oplus-or"
    ~description:"(p | q) \u{2295} f \u{2261} (p \u{2295} f) | (q \u{2295} f)"
    (Oplus (Orp (p, q), f))
    (Orp (Oplus (p, f), Oplus (q, f)))

let hk_oplus_inv =
  Rule.pred_rule ~name:"hk-oplus-inv"
    ~description:"p\u{207B}\u{B9} \u{2295} f \u{2261} (p \u{2295} f)\u{207B}\u{B9}"
    (Oplus (Inv p, f))
    (Inv (Oplus (p, f)))

(* con simplifications. *)
let hk_con_true =
  Rule.fun_rule ~name:"hk-con-true" ~description:"con(Kp(T), f, g) \u{2261} f"
    (Con (Kp true, f, g)) f

let hk_con_false =
  Rule.fun_rule ~name:"hk-con-false" ~description:"con(Kp(F), f, g) \u{2261} g"
    (Con (Kp false, f, g)) g

let hk_con_same =
  Rule.fun_rule ~name:"hk-con-same" ~description:"con(p, f, f) \u{2261} f"
    (Con (p, f, f)) f

let hk_con_inv =
  Rule.fun_rule ~name:"hk-con-inv"
    ~description:"con(p\u{207B}\u{B9}, f, g) \u{2261} con(p, g, f)"
    (Con (Inv p, f, g))
    (Con (p, g, f))

(* f ∘ con(p, g, h) ≡ con(p, f ∘ g, f ∘ h) *)
let hk_compose_con =
  Rule.fun_rule ~name:"hk-compose-con"
    ~description:"composition distributes into conditionals"
    (Compose (f, Con (p, g, h)))
    (Con (p, Compose (f, g), Compose (f, h)))

(* iterate laws beyond 11/12. *)
let hk_iterate_empty =
  Rule.fun_rule ~name:"hk-iterate-empty"
    ~description:"iterate(Kp(F), f) \u{2261} Kf(\u{2205})"
    (Iterate (Kp false, f))
    (Kf (Value.set []))

(* sel(p) ∘ sel(q) ≡ sel(q & p): selection cascade. *)
let hk_sel_cascade =
  Rule.fun_rule ~name:"hk-sel-cascade"
    ~description:"selection cascade"
    (Compose (Iterate (p, Id), Iterate (q, Id)))
    (Iterate (Andp (q, p), Id))

(* flat ∘ iterate(Kp T, iterate(p, id)) ≡ iterate(p, id) ∘ flat:
   selections commute with flattening. *)
let hk_sel_flat =
  Rule.fun_rule ~name:"hk-sel-flat"
    ~description:"selection commutes with flat"
    (Compose (Flat, Iterate (Kp true, Iterate (p, Id))))
    (Compose (Iterate (p, Id), Flat))

(* Selection pushes into (the left of) a join:
   sel(p ⊕ π1-shaped) over join — expressed directly on join's predicate:
   join(q & (p ⊕ π1), f) can be computed by pre-filtering the left input.
   At the function level: iterate(p, id) ∘ join(q, id) ≡ join(q & (p ⊕ id?), ...)
   needs argument access; the useful declarative form is on the predicate
   side and is covered by r24-style absorption (see Hidden_join). *)

(* Cf/Cp expansions. *)
let hk_cf_def =
  Rule.fun_rule ~name:"hk-cf-def"
    ~description:"Cf(f, k) \u{2261} f \u{2218} \u{27E8}Kf(k), id\u{27E9}"
    (Cf (f, k))
    (Compose (f, Pairf (Kf k, Id)))

let hk_cp_def =
  Rule.pred_rule ~name:"hk-cp-def"
    ~description:"Cp(p, k) \u{2261} p \u{2295} \u{27E8}Kf(k), id\u{27E9}"
    (Cp (p, k))
    (Oplus (p, Pairf (Kf k, Id)))

(* All of Figure 5, in the paper's numbering order. *)
let figure5 =
  [ r1; r2; r3; r4; r5; r6t; r6f; r7; r8; r9; r10; r11; r12; r13; r14; r15; r16 ]

let housekeeping =
  [
    r5c; r7c; hk_times; hk_times_l; hk_times_r; hk_times_id; hk_times_compose;
    hk_times_pair; hk_pair_compose; hk_pi1_times; hk_pi2_times; hk_and_idem;
    hk_or_idem; hk_and_false; hk_or_true; hk_or_false; hk_inv_inv;
    hk_conv_conv; hk_conv_eq; hk_demorgan_and; hk_demorgan_or; hk_oplus_and;
    hk_oplus_or; hk_oplus_inv; hk_con_true; hk_con_false; hk_con_same;
    hk_con_inv; hk_compose_con; hk_iterate_empty; hk_sel_cascade; hk_sel_flat;
    hk_cf_def; hk_cp_def;
  ]

(* hk_and_comm is certified but kept out of normalizing rule sets: it loops. *)
let non_normalizing = [ hk_and_comm ]

let all = figure5 @ housekeeping

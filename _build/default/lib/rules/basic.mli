(** Figure 5 (rules 1–16) exactly as printed — with the one repair
    documented at {!r13} — plus the housekeeping identities the paper's
    derivations use silently. *)

val r1 : Rewrite.Rule.t   (* f ∘ id ≡ f *)
val r2 : Rewrite.Rule.t   (* id ∘ f ≡ f *)
val r3 : Rewrite.Rule.t   (* ⟨π1, π2⟩ ≡ id *)
val r4 : Rewrite.Rule.t   (* p ⊕ id ≡ p *)
val r5 : Rewrite.Rule.t   (* Kp(T) & p ≡ p *)
val r5c : Rewrite.Rule.t  (* p & Kp(T) ≡ p *)
val r6t : Rewrite.Rule.t  (* Kp(T) ⊕ f ≡ Kp(T) *)
val r6f : Rewrite.Rule.t  (* Kp(F) ⊕ f ≡ Kp(F) *)
val r7 : Rewrite.Rule.t   (* gt⁻¹ ≡ leq *)
val r7c : Rewrite.Rule.t  (* leq⁻¹ ≡ gt *)
val r8 : Rewrite.Rule.t   (* Kf(k) ∘ f ≡ Kf(k) *)
val r9 : Rewrite.Rule.t   (* π1 ∘ ⟨f, g⟩ ≡ f *)
val r10 : Rewrite.Rule.t  (* π2 ∘ ⟨f, g⟩ ≡ g *)
val r11 : Rewrite.Rule.t  (* iterate fusion *)
val r12 : Rewrite.Rule.t  (* select after map ≡ filtered map *)

val r13 : Rewrite.Rule.t
(** p ⊕ ⟨f, Kf(k)⟩ ≡ Cp(pᵒ, k) ⊕ f — repaired with the converse; the
    paper's printed Cp(p⁻¹, k) form is boundary-unsound. *)

val r13_paper : Rewrite.Rule.t
(** The printed form; excluded from {!Catalog.all}, refuted by {!Cert}. *)

val r14 : Rewrite.Rule.t  (* p ⊕ (f ∘ g) ≡ (p ⊕ f) ⊕ g *)
val r15 : Rewrite.Rule.t  (* code motion: iter(p ⊕ π1, π2) ≡ con(...) *)
val r16 : Rewrite.Rule.t  (* con(p,f,g) ∘ h distributes *)

(** {1 Housekeeping} *)

val hk_times : Rewrite.Rule.t
val hk_times_l : Rewrite.Rule.t
val hk_times_r : Rewrite.Rule.t
val hk_times_id : Rewrite.Rule.t
val hk_times_compose : Rewrite.Rule.t
val hk_times_pair : Rewrite.Rule.t
val hk_pair_compose : Rewrite.Rule.t
val hk_pi1_times : Rewrite.Rule.t
val hk_pi2_times : Rewrite.Rule.t
val hk_and_comm : Rewrite.Rule.t
val hk_and_idem : Rewrite.Rule.t
val hk_or_idem : Rewrite.Rule.t
val hk_and_false : Rewrite.Rule.t
val hk_or_true : Rewrite.Rule.t
val hk_or_false : Rewrite.Rule.t
val hk_inv_inv : Rewrite.Rule.t
val hk_conv_conv : Rewrite.Rule.t
val hk_conv_eq : Rewrite.Rule.t
val hk_demorgan_and : Rewrite.Rule.t
val hk_demorgan_or : Rewrite.Rule.t
val hk_oplus_and : Rewrite.Rule.t
val hk_oplus_or : Rewrite.Rule.t
val hk_oplus_inv : Rewrite.Rule.t
val hk_con_true : Rewrite.Rule.t
val hk_con_false : Rewrite.Rule.t
val hk_con_same : Rewrite.Rule.t
val hk_con_inv : Rewrite.Rule.t
val hk_compose_con : Rewrite.Rule.t
val hk_iterate_empty : Rewrite.Rule.t
val hk_sel_cascade : Rewrite.Rule.t
val hk_sel_flat : Rewrite.Rule.t
val hk_cf_def : Rewrite.Rule.t
val hk_cp_def : Rewrite.Rule.t

val figure5 : Rewrite.Rule.t list
val housekeeping : Rewrite.Rule.t list

val non_normalizing : Rewrite.Rule.t list
(** Certified but excluded from normalizing sets (they loop). *)

val all : Rewrite.Rule.t list

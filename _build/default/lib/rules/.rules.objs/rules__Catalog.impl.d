lib/rules/catalog.ml: Basic Extra Filename Fmt Hidden_join List Option Precond Rewrite String

lib/rules/hidden_join.ml: Kola Rewrite Rule Value

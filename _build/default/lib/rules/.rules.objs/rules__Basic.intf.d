lib/rules/basic.mli: Rewrite

lib/rules/catalog.mli: Rewrite

lib/rules/cert.mli: Datagen Fmt Kola Rewrite

lib/rules/lint.mli: Fmt Kola Rewrite

lib/rules/basic.ml: Kola Rewrite Rule Value

lib/rules/lint.ml: Fmt Kola List Option Rewrite Schema Term Typing

lib/rules/hidden_join.mli: Rewrite

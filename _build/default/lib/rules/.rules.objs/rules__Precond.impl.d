lib/rules/precond.ml: Kola Props Rewrite Rule

lib/rules/extra.ml: Kola Rewrite Rule Value

lib/rules/cert.ml: Datagen Eval Fmt Hashtbl Kola List Option Rewrite Schema String Term Ty Typing Value

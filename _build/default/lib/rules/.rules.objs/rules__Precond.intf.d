lib/rules/precond.mli: Rewrite

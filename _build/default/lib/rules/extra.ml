(* An extended pool of certified algebraic laws, beyond the rules the paper
   prints.  The paper reports a pool of 500 proven rules "from which a
   rule-based optimizer could draw"; these are the kinds of laws that pool
   contains.  Every rule here is exercised by the certification harness
   (test_rules_cert covers the whole catalog). *)

open Kola
open Kola.Term
open Rewrite

let f = Fhole "f"
let g = Fhole "g"
let h = Fhole "h"
let p = Phole "p"
let q = Phole "q"

(* ------------------------------------------------------------------ *)
(* Monad laws for the set functor (flat / sng / iterate). *)

(* flat ∘ flat ≡ flat ∘ iterate(Kp T, flat): associativity. *)
let flat_flat =
  Rule.fun_rule ~name:"x-flat-flat" ~description:"flatten twice, either order"
    (Compose (Flat, Flat))
    (Compose (Flat, Iterate (Kp true, Flat)))

(* flat ∘ sng ≡ id: flattening a singleton of a set. *)
let flat_sng =
  Rule.fun_rule ~name:"x-flat-sng" ~description:"flat \u{2218} sng \u{2261} id"
    (Compose (Flat, Sng)) Id

(* flat ∘ iterate(Kp T, sng) ≡ id: flattening singletons of elements. *)
let flat_map_sng =
  Rule.fun_rule ~name:"x-flat-map-sng"
    ~description:"flat \u{2218} iterate(Kp(T), sng) \u{2261} id"
    (Compose (Flat, Iterate (Kp true, Sng)))
    Id

(* iterate(p, f) ∘ sng ≡ con(p, sng ∘ f, Kf(∅)): loops over singletons are
   conditionals — a cousin of the paper's rule 15. *)
let iterate_sng =
  Rule.fun_rule ~name:"x-iterate-sng"
    ~description:"a loop over a singleton is a conditional"
    (Compose (Iterate (p, f), Sng))
    (Con (p, Compose (Sng, f), Kf (Value.set [])))

(* cnt ∘ sng ≡ Kf(1). *)
let cnt_sng =
  Rule.fun_rule ~name:"x-cnt-sng" ~description:"cnt \u{2218} sng \u{2261} Kf(1)"
    (Compose (Agg Count, Sng))
    (Kf (Value.Int 1))

(* iterate(p, f) ∘ flat ≡ flat ∘ iterate(Kp T, iterate(p, f)):
   filter-map commutes with flattening. *)
let iterate_flat =
  Rule.fun_rule ~name:"x-iterate-flat"
    ~description:"filter-map commutes with flat"
    (Compose (Iterate (p, f), Flat))
    (Compose (Flat, Iterate (Kp true, Iterate (p, f))))

(* ------------------------------------------------------------------ *)
(* Join laws. *)

(* join(p, f) ≡ join(pᵒ, f ∘ ⟨π2, π1⟩) ∘ ⟨π2, π1⟩: join commutativity. *)
let join_commute =
  Rule.fun_rule ~name:"x-join-commute" ~description:"join commutativity"
    (Join (p, f))
    (Compose
       ( Join (Conv p, Compose (f, Pairf (Pi2, Pi1))),
         Pairf (Pi2, Pi1) ))

(* join(q & (p ⊕ π1), f) ≡ join(q, f) ∘ (sel(p) × id): push a selection on
   the left input below the join — the classical select-past-join. *)
let join_push_left =
  Rule.fun_rule ~name:"x-join-push-left"
    ~description:"push a left-input selection below the join"
    (Join (Andp (q, Oplus (p, Pi1)), f))
    (Compose (Join (q, f), Times (Iterate (p, Id), Id)))

let join_push_right =
  Rule.fun_rule ~name:"x-join-push-right"
    ~description:"push a right-input selection below the join"
    (Join (Andp (q, Oplus (p, Pi2)), f))
    (Compose (Join (q, f), Times (Id, Iterate (p, Id))))

(* join(p, f) ≡ iterate(Kp T, f) ∘ iterate(p, id) ∘ join(Kp T, id):
   a join is a filtered, mapped cross product. *)
let join_expand =
  Rule.fun_rule ~name:"x-join-expand"
    ~description:"join as filtered cross product"
    (Join (p, f))
    (chain [ Iterate (Kp true, f); Iterate (p, Id); Join (Kp true, Id) ])

(* iterate(p, f) ∘ join(q, g) ≡ join(q & (p ⊕ g), f ∘ g): absorb a
   filter-map into a join (the un-framed version of rule 24). *)
let sel_join_absorb =
  Rule.fun_rule ~name:"x-sel-join-absorb"
    ~description:"absorb a filter-map into the join"
    (Compose (Iterate (p, f), Join (q, g)))
    (Join (Andp (q, Oplus (p, g)), Compose (f, g)))

(* ------------------------------------------------------------------ *)
(* Nest / unnest laws. *)

(* nest(f, g) ∘ (iterate(Kp T, h) × id) ≡ nest(f ∘ h, g ∘ h): grouping a
   mapped set groups the originals. *)
let nest_absorb_map =
  Rule.fun_rule ~name:"x-nest-absorb-map"
    ~description:"nest absorbs a map on the grouped input"
    (Compose (Nest (f, g), Times (Iterate (Kp true, h), Id)))
    (Nest (Compose (f, h), Compose (g, h)))

(* unnest(f, g) ∘ iterate(Kp T, h) ≡ unnest(f ∘ h, g ∘ h). *)
let unnest_absorb_map =
  Rule.fun_rule ~name:"x-unnest-absorb-map"
    ~description:"unnest absorbs a preceding map"
    (Compose (Unnest (f, g), Iterate (Kp true, h)))
    (Unnest (Compose (f, h), Compose (g, h)))

(* ------------------------------------------------------------------ *)
(* Currying laws. *)

(* Cf(f ∘ (id × g), k) ≡ Cf(f, k) ∘ g. *)
let cf_push =
  Rule.fun_rule ~name:"x-cf-push"
    ~description:"push composition out of a curried function"
    (Cf (Compose (f, Times (Id, g)), Value.Hole "k"))
    (Compose (Cf (f, Value.Hole "k"), g))

(* Cp(p ⊕ (id × g), k) ≡ Cp(p, k) ⊕ g. *)
let cp_push =
  Rule.pred_rule ~name:"x-cp-push"
    ~description:"push composition out of a curried predicate"
    (Cp (Oplus (p, Times (Id, g)), Value.Hole "k"))
    (Oplus (Cp (p, Value.Hole "k"), g))

(* ------------------------------------------------------------------ *)
(* Conditionals and selections. *)

(* ⟨con(p, f, g), con(p, h, j)⟩ ≡ con(p, ⟨f, h⟩, ⟨g, j⟩). *)
let con_pair =
  Rule.fun_rule ~name:"x-con-pair"
    ~description:"pair of conditionals on one predicate"
    (Pairf (Con (p, f, g), Con (p, h, Fhole "j")))
    (Con (p, Pairf (f, h), Pairf (g, Fhole "j")))

(* iterate(p, con(q, f, g)) ≡
   union ∘ ⟨iterate(p & q, f), iterate(p & q⁻¹, g)⟩. *)
let iterate_con_split =
  Rule.fun_rule ~name:"x-iterate-con-split"
    ~description:"split a conditional body into a union of loops"
    (Iterate (p, Con (q, f, g)))
    (Compose
       ( Setop Union,
         Pairf (Iterate (Andp (p, q), f), Iterate (Andp (p, Inv q), g)) ))

(* sel(p) ∘ union ≡ union ∘ (sel(p) × sel(p)). *)
let sel_union =
  Rule.fun_rule ~name:"x-sel-union"
    ~description:"selection distributes over union"
    (Compose (Iterate (p, Id), Setop Union))
    (Compose (Setop Union, Times (Iterate (p, Id), Iterate (p, Id))))

(* iterate(Kp T, f) ∘ union ≡ union ∘ (iterate(Kp T, f) × iterate(Kp T, f)). *)
let map_union_distribute =
  Rule.fun_rule ~name:"x-map-union"
    ~description:"map distributes over union"
    (Compose (Iterate (Kp true, f), Setop Union))
    (Compose (Setop Union, Times (Iterate (Kp true, f), Iterate (Kp true, f))))

(* ------------------------------------------------------------------ *)
(* Converse laws. *)

(* (p & q)ᵒ ≡ pᵒ & qᵒ. *)
let conv_and =
  Rule.pred_rule ~name:"x-conv-and" ~description:"converse of a conjunction"
    (Conv (Andp (p, q)))
    (Andp (Conv p, Conv q))

(* (p ⊕ (f × g))ᵒ ≡ pᵒ ⊕ (g × f). *)
let conv_oplus_times =
  Rule.pred_rule ~name:"x-conv-oplus-times"
    ~description:"converse through a product"
    (Conv (Oplus (p, Times (f, g))))
    (Oplus (Conv p, Times (g, f)))

(* (p⁻¹)ᵒ ≡ (pᵒ)⁻¹. *)
let conv_inv =
  Rule.pred_rule ~name:"x-conv-inv"
    ~description:"converse and negation commute"
    (Conv (Inv p))
    (Inv (Conv p))

(* ------------------------------------------------------------------ *)
(* The predicate-bin classification of Section 5: predicates of the form
   p ⊕ π1 examine only the first set, p ⊕ π2 only the second.  Splitting a
   join predicate's conjuncts into bins is what [16]'s sorting routine did
   with code; here each step is one rule. *)

(* join(q & ((p ⊕ π1) & r), f): rotate conjunctions left so bin-shaped
   conjuncts surface: (p & q) & r ≡ p & (q & r). *)
let and_assoc =
  Rule.pred_rule ~name:"x-and-assoc" ~description:"& associativity"
    (Andp (Andp (p, q), Phole "r"))
    (Andp (p, Andp (q, Phole "r")))

let all =
  [
    flat_flat; flat_sng; flat_map_sng; iterate_sng; cnt_sng; iterate_flat;
    join_commute; join_push_left; join_push_right; join_expand;
    sel_join_absorb; nest_absorb_map; unnest_absorb_map; cf_push; cp_push;
    con_pair; iterate_con_split; sel_union; map_union_distribute; conv_and;
    conv_oplus_times; conv_inv; and_assoc;
  ]

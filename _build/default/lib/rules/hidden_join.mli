(** Figure 8: the rules of the Section 4.1 five-step hidden-join strategy.

    Rules 17b and 22b are the g = id / f = π2 specialisations the paper
    reaches via unit laws applied right-to-left; registering them directly
    keeps every COKO step strictly simplifying. *)

val r17 : Rewrite.Rule.t   (* break up a complex iterate *)
val r17b : Rewrite.Rule.t  (* ... without a postprocessing function *)
val r18 : Rewrite.Rule.t   (* iterate(Kp T, id) ≡ id *)

val r19 : Rewrite.Rule.t
(** Bottom out with a nest of a join — a query rule: it moves the constant
    set into the query argument. *)

val r19f : Rewrite.Rule.t
(** The function-level reading of rule 19; applies anywhere in a chain
    (where GROUP BY desugaring leaves its hidden join). *)

val r20 : Rewrite.Rule.t   (* pull nest above an iter step *)
val r21 : Rewrite.Rule.t   (* pull nest above a flatten step *)
val r22 : Rewrite.Rule.t   (* pull unnest above an iterate step *)
val r22b : Rewrite.Rule.t  (* ... selection variant *)
val r23 : Rewrite.Rule.t   (* coalesce stacked unnests *)
val r24 : Rewrite.Rule.t   (* absorb an iterate into the join *)

val figure8 : Rewrite.Rule.t list

(* Rule certification: the reproduction's analogue of the paper's Larch/LP
   machine-checked proofs ("we have constructed proofs of over 500 rules").

   For each rule we repeatedly:
   1. instantiate every hole with a random well-typed term drawn from pools
      over the paper schema (functions such as age, city ∘ addr, child;
      predicates such as gt ⊕ ⟨age, Kf(25)⟩; constant values);
   2. type-check both sides (instantiations that do not type are discarded);
   3. infer the LHS input type, generate random inputs of that type from a
      generated store, and compare the two sides' denotations.

   A rule is *certified* when [samples] independent instantiations agree on
   all inputs.  This is testing, not proof — but it is the same artifact
   (an independently validated rule pool) and it catches the same defect
   class: it rejects the paper's printed rule 13 (see test_rules_cert). *)

open Kola
open Kola.Term
module Subst = Rewrite.Subst
module Store = Datagen.Store

type result = {
  rule : Rewrite.Rule.t;
  instances : int;      (** well-typed instantiations exercised *)
  checks : int;         (** (instance, input) pairs compared *)
  counterexample : (Subst.t * Value.t) option;
}

type ('a, 'b) either = L of 'a | R of 'b

type pool = {
  funcs : func list;
  preds : pred list;
  values : Value.t list;
}

let store = Store.generate { Store.default_params with people = 14; vehicles = 10; seed = 99 }
let db = Store.db store

let person () = List.nth store.Store.persons 0
let vehicle () = List.nth store.Store.vehicles 0

let default_pool =
  {
    funcs =
      [
        Id;
        Prim "age";
        Prim "addr";
        Prim "child";
        Prim "cars";
        Prim "grgs";
        Prim "name";
        Compose (Prim "city", Prim "addr");
        Pairf (Prim "age", Prim "age");
        Pairf (Id, Prim "child");
        Kf (Value.Int 7);
        Kf (Value.set []);
        Iterate (Kp true, Prim "age");
        Iterate (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 30))), Id);
        Con (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 25))), Prim "child", Kf (Value.set []));
        Agg Count;
        Pi1;
        Pi2;
        Times (Prim "age", Prim "name");
        Flat;
      ];
    preds =
      [
        Kp true;
        Kp false;
        Eq;
        Gt;
        Leq;
        In;
        Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 25)));
        Oplus (Leq, Pairf (Prim "age", Kf (Value.Int 40)));
        Oplus (Eq, Pairf (Compose (Prim "city", Prim "addr"), Kf (Value.Str "Boston")));
        Andp (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 10))), Kp true);
        Inv (Oplus (Gt, Pairf (Prim "age", Kf (Value.Int 50))));
        Cp (Gt, Value.Int 20);
        Conv Gt;
      ];
    values =
      [
        Value.Int 25;
        Value.Int 0;
        Value.Str "Boston";
        Value.set [];
        Value.Named "P";
        Value.Named "V";
        Value.set [ person () ];
        person ();
        vehicle ();
      ];
  }

(* Random well-typed value of type [ty], drawing objects from the store. *)
let rec value_of_ty rng (ty : Ty.t) : Value.t option =
  match ty with
  | Ty.Unit -> Some Value.Unit
  | Ty.Bool -> Some (Value.Bool (Store.int rng 2 = 0))
  | Ty.Int -> Some (Value.Int (Store.int rng 100 - 20))
  | Ty.Str -> Some (Value.Str (Store.pick rng [ "Boston"; "Providence"; "x" ]))
  | Ty.Pair (a, b) -> (
    match value_of_ty rng a, value_of_ty rng b with
    | Some va, Some vb -> Some (Value.Pair (va, vb))
    | _ -> None)
  | Ty.Set a | Ty.Bag a | Ty.List a ->
    let n = Store.int rng 4 in
    let elems = List.init n (fun _ -> value_of_ty rng a) in
    if List.for_all Option.is_some elems then
      Some (Value.set (List.map Option.get elems))
    else None
  | Ty.Obj "Person" -> Some (Store.pick rng store.Store.persons)
  | Ty.Obj "Vehicle" -> Some (Store.pick rng store.Store.vehicles)
  | Ty.Obj "Address" -> Some (Store.pick rng store.Store.addresses)
  | Ty.Obj _ -> None
  | Ty.Var _ ->
    (* unconstrained: any concrete type will do *)
    value_of_ty rng Ty.Int

(* Build a random substitution for the rule's holes. *)
let random_subst rng pool (holes : string list) : Subst.t =
  List.fold_left
    (fun subst hole ->
      match String.split_on_char ':' hole with
      | [ "f"; h ] -> { subst with Subst.funcs = (h, Store.pick rng pool.funcs) :: subst.Subst.funcs }
      | [ "p"; h ] -> { subst with Subst.preds = (h, Store.pick rng pool.preds) :: subst.Subst.preds }
      | [ "v"; h ] -> { subst with Subst.values = (h, Store.pick rng pool.values) :: subst.Subst.values }
      | _ -> subst)
    Subst.empty holes

let holes_of_rule (r : Rewrite.Rule.t) =
  let both f a b = f a @ f b in
  let uniq xs = List.sort_uniq String.compare xs in
  match r.Rewrite.Rule.body with
  | Rewrite.Rule.Fun_rule (l, rr) -> uniq (both Term.holes_func l rr)
  | Rewrite.Rule.Pred_rule (l, rr) ->
    (* wrap predicates in a dummy iterate to reuse holes_func *)
    uniq (both (fun p -> Term.holes_func (Iterate (p, Id))) l rr)
  | Rewrite.Rule.Query_rule ((lf, la), (rf, ra)) ->
    uniq
      (Term.holes_func lf @ Term.holes_func rf
      @ Term.holes_func (Kf la) @ Term.holes_func (Kf ra))

(* Compare both sides of an instantiated rule on [inputs] random inputs. *)
let check_instance rng schema (r : Rewrite.Rule.t) (subst : Subst.t) ~inputs :
    (int, Value.t) either =
  let eval_both mk_l mk_r input_ty =
    let rec go i checks =
      if i = 0 then L checks
      else
        match value_of_ty rng input_ty with
        | None -> L checks
        | Some v -> (
          let run mk =
            try Ok (Eval.deep_resolve (Eval.ctx ~db ()) (mk v))
            with Eval.Error _ -> Error ()
          in
          match run mk_l, run mk_r with
          | Ok a, Ok b when Value.equal a b -> go (i - 1) (checks + 1)
          | Error (), Error () -> go (i - 1) (checks + 1)
          | Ok _, Ok _ | Ok _, Error () | Error (), Ok _ -> R v)
    in
    go inputs 0
  in
  match r.Rewrite.Rule.body with
  | Rewrite.Rule.Fun_rule (l, rr) -> (
    let l = Subst.apply_func subst l and rr = Subst.apply_func subst rr in
    match Typing.func_ty schema l, Typing.func_ty schema rr with
    | (lin, _), (rin, _) -> (
      (* require both sides to type; use the more specific input type *)
      let input_ty = match lin with Ty.Var _ -> rin | t -> t in
      eval_both
        (fun v -> Eval.eval_func ~db l v)
        (fun v -> Eval.eval_func ~db rr v)
        input_ty)
    | exception Typing.Type_error _ -> L 0)
  | Rewrite.Rule.Pred_rule (l, rr) -> (
    let l = Subst.apply_pred subst l and rr = Subst.apply_pred subst rr in
    match Typing.pred_ty schema l, Typing.pred_ty schema rr with
    | lin, rin -> (
      let input_ty = match lin with Ty.Var _ -> rin | t -> t in
      eval_both
        (fun v -> Value.Bool (Eval.eval_pred ~db l v))
        (fun v -> Value.Bool (Eval.eval_pred ~db rr v))
        input_ty)
    | exception Typing.Type_error _ -> L 0)
  | Rewrite.Rule.Query_rule ((lf, la), (rf, ra)) -> (
    let lf = Subst.apply_func subst lf and rf = Subst.apply_func subst rf in
    let la = Subst.apply_value subst la and ra = Subst.apply_value subst ra in
    match
      ( Eval.eval_query ~db (Term.query lf la),
        Eval.eval_query ~db (Term.query rf ra) )
    with
    | a, b when Value.equal a b -> L 1
    | _ -> R la
    | exception Eval.Error _ -> L 0
    | exception Typing.Type_error _ -> L 0)

(* Certify one rule with [samples] well-typed instantiations, each compared
   on [inputs] random inputs. *)
let certify ?(schema = Schema.paper) ?(samples = 60) ?(inputs = 12)
    ?(pool = default_pool) ?(seed = 2025) (r : Rewrite.Rule.t) : result =
  let rng = Store.rng (seed lxor Hashtbl.hash r.Rewrite.Rule.name) in
  let holes = holes_of_rule r in
  let rec go tries instances checks =
    if instances >= samples || tries >= samples * 20 then
      { rule = r; instances; checks; counterexample = None }
    else
      let subst = random_subst rng pool holes in
      if not (Rewrite.Rule.check_preconditions schema r subst) then
        go (tries + 1) instances checks
      else
      match check_instance rng schema r subst ~inputs with
      | L 0 -> go (tries + 1) instances checks
      | L n -> go (tries + 1) (instances + 1) (checks + n)
      | R v ->
        { rule = r; instances; checks; counterexample = Some (subst, v) }
  in
  go 0 0 0

let certified result = Option.is_none result.counterexample && result.instances > 0

let certify_all ?schema ?samples ?inputs ?pool ?seed rules =
  List.map (fun r -> certify ?schema ?samples ?inputs ?pool ?seed r) rules

let pp_result ppf r =
  match r.counterexample with
  | None ->
    Fmt.pf ppf "%-18s certified (%d instances, %d checks)"
      r.rule.Rewrite.Rule.name r.instances r.checks
  | Some (_, v) ->
    Fmt.pf ppf "%-18s REFUTED on input %a" r.rule.Rewrite.Rule.name Value.pp v

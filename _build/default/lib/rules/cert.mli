(** Rule certification — the reproduction's analogue of the paper's
    Larch/LP machine-checked proofs of 500 rules.

    For each rule: instantiate every hole with random well-typed terms from
    a pool over the paper schema, discard instantiations that do not type,
    then compare both sides' denotations on random inputs of the inferred
    input type.  Testing, not proof — but it validates the same artifact
    and catches the same defect class (it refutes the paper's printed rule
    13; see test_rules_cert.ml). *)

type result = {
  rule : Rewrite.Rule.t;
  instances : int;  (** well-typed instantiations exercised *)
  checks : int;     (** (instance, input) comparisons made *)
  counterexample : (Rewrite.Subst.t * Kola.Value.t) option;
}

type ('a, 'b) either = L of 'a | R of 'b

type pool = {
  funcs : Kola.Term.func list;
  preds : Kola.Term.pred list;
  values : Kola.Value.t list;
}

val default_pool : pool

val value_of_ty : Datagen.Store.rng -> Kola.Ty.t -> Kola.Value.t option
(** Random well-typed value, drawing objects from a fixed store. *)

val certify :
  ?schema:Kola.Schema.t -> ?samples:int -> ?inputs:int -> ?pool:pool ->
  ?seed:int -> Rewrite.Rule.t -> result

val certified : result -> bool
(** No counterexample and at least one real instantiation. *)

val certify_all :
  ?schema:Kola.Schema.t -> ?samples:int -> ?inputs:int -> ?pool:pool ->
  ?seed:int -> Rewrite.Rule.t list -> result list

val pp_result : result Fmt.t

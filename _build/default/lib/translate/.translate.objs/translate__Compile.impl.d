lib/translate/compile.ml: Aqua Fmt Kola List String Term Value

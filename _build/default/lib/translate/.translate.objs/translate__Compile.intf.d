lib/translate/compile.mli: Aqua Kola

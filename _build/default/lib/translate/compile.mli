(** The AQUA → KOLA combinator translation of [11], as used in Sections 3
    and 4.2 of the paper.

    Variables are compiled away by making environments explicit: the
    environment for variables x1..xn is the left-nested pair
    [..[x1, x2].., xn]; variable access is a π-chain; iteration under an
    environment uses [iter]; environments extend with ⟨id, ·⟩.  The garage
    query of {!Aqua.Examples.garage} translates to the paper's KG1
    verbatim. *)

exception Untranslatable of string

val access : int -> int -> Kola.Term.func
(** [access n i]: the π-chain reading variable i (1-based, 1 = outermost)
    from an environment of n variables. *)

val func : string list -> Aqua.Ast.expr -> Kola.Term.func
(** [func env e]: a function F with F ! ρ = e under environment ρ. *)

val pred : string list -> Aqua.Ast.expr -> Kola.Term.pred

val query : Aqua.Ast.expr -> Kola.Term.query
(** Translate a closed query.
    @raise Untranslatable on open expressions or untranslatable forms. *)

(** Metrics for the Section 4.2 size experiment. *)
type metrics = {
  aqua_size : int;  (** n: nodes in the source *)
  nesting : int;    (** m: maximum simultaneously bound variables *)
  kola_size : int;  (** nodes in the translation *)
  ratio : float;    (** kola_size / aqua_size; the paper observed < 2 *)
}

val measure : Aqua.Ast.expr -> metrics

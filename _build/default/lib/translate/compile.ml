(* The AQUA → KOLA combinator translation of [11] (Cherniack & Zdonik,
   "Combinator translations of queries", Brown TR CS-95-40), as described in
   Sections 3 and 4.2 of the paper.

   Variables are compiled away by making environments explicit: an
   environment for variables [x1; ...; xn] (x1 outermost) is the
   left-nested pair [..[x1, x2].., xn].  Variable access is a π-chain,
   iteration under an environment uses [iter] (whose pairs [e, y] carry the
   environment to each element), and environments are *extended* with
   ⟨id, ·⟩ — exactly the shapes visible in the paper's KG1.

   [query] translates a closed AQUA query to a KOLA query (function !
   argument); the KG1 form of Figure 3 falls out of [Aqua.Examples.garage]
   verbatim (see test/test_translate.ml). *)

open Kola
open Kola.Term

exception Untranslatable of string

(* Smart composition: unit laws (rules 1 and 2) applied during translation,
   as the paper's printed translations assume. *)
let ( *^ ) f g =
  match f, g with
  | Id, g -> g
  | f, Id -> f
  | f, g -> Compose (f, g)

let fail fmt = Fmt.kstr (fun s -> raise (Untranslatable s)) fmt

(* Variable access: position [i] (1-based, 1 = outermost) in an environment
   of [n] variables. *)
let rec access n i =
  if n = 1 && i = 1 then Id
  else if i = n then Pi2
  else if i < n then access (n - 1) i *^ Pi1
  else invalid_arg "access: index out of range"

let lookup env x =
  let n = List.length env in
  (* innermost binding of x wins (shadowing): search from the right *)
  let rec go i best = function
    | [] -> best
    | y :: rest -> go (i + 1) (if String.equal x y then Some i else best) rest
  in
  match go 1 None env with
  | Some i -> access n i
  | None -> fail "unbound variable %s" x

let comparison (op : Aqua.Ast.binop) : pred =
  match op with
  | Aqua.Ast.Eq -> Eq
  | Aqua.Ast.Leq -> Leq
  | Aqua.Ast.Gt -> Gt
  | Aqua.Ast.Lt -> Conv Gt   (* a < b  ⟺  b > a *)
  | Aqua.Ast.Geq -> Conv Leq (* a ≥ b  ⟺  b ≤ a *)
  | Aqua.Ast.In -> In
  | _ -> invalid_arg "comparison"

let arith (op : Aqua.Ast.binop) : func =
  match op with
  | Aqua.Ast.Add -> Arith Add
  | Aqua.Ast.Sub -> Arith Sub
  | Aqua.Ast.Mul -> Arith Mul
  | Aqua.Ast.Union -> Setop Union
  | Aqua.Ast.Inter -> Setop Inter
  | Aqua.Ast.Diff -> Setop Diff
  | _ -> invalid_arg "arith"

(* F(e, ρ): a KOLA function such that F ! ρval = the value of e under ρ. *)
let rec func env (e : Aqua.Ast.expr) : func =
  match e with
  | Aqua.Ast.Var x -> lookup env x
  | Aqua.Ast.Const v -> Kf v
  | Aqua.Ast.Extent s -> Kf (Value.Named s)
  | Aqua.Ast.Path (e, attr) -> Prim attr *^ func env e
  | Aqua.Ast.Pair (a, b) -> Pairf (func env a, func env b)
  | Aqua.Ast.App (l, set) ->
    Iter (Kp true, func (env @ [ l.v ]) l.body) *^ Pairf (Id, func env set)
  | Aqua.Ast.Sel (l, set) ->
    Iter (pred (env @ [ l.v ]) l.body, Pi2) *^ Pairf (Id, func env set)
  | Aqua.Ast.Flatten e -> Flat *^ func env e
  | Aqua.Ast.Join (p, f, a, b) ->
    func env (Aqua.Ast.desugar_join p f a b)
  | Aqua.Ast.If (c, t, e) -> Con (pred env c, func env t, func env e)
  | Aqua.Ast.Agg (op, e) -> Agg op *^ func env e
  | Aqua.Ast.SetLit [] -> Kf (Value.set [])
  | Aqua.Ast.SetLit [ e ] -> Sng *^ func env e
  | Aqua.Ast.SetLit (e :: rest) ->
    (* {e1, ..., en} = {e1} ∪ {e2, ..., en} *)
    Compose
      (Setop Union, Pairf (Sng *^ func env e, func env (Aqua.Ast.SetLit rest)))
  | Aqua.Ast.Not _ | Aqua.Ast.Bin ((Eq | Leq | Lt | Gt | Geq | In | And | Or), _, _)
    ->
    (* A boolean expression in value position becomes a conditional. *)
    Con (pred env e, Kf (Value.Bool true), Kf (Value.Bool false))
  | Aqua.Ast.Bin (op, a, b) ->
    Compose (arith op, Pairf (func env a, func env b))

(* P(e, ρ): a KOLA predicate such that P ? ρval ⟺ e under ρ. *)
and pred env (e : Aqua.Ast.expr) : pred =
  match e with
  | Aqua.Ast.Const (Value.Bool b) -> Kp b
  | Aqua.Ast.Bin ((Eq | Leq | Lt | Gt | Geq | In) as op, a, b) ->
    Oplus (comparison op, Pairf (func env a, func env b))
  | Aqua.Ast.Bin (And, a, b) -> Andp (pred env a, pred env b)
  | Aqua.Ast.Bin (Or, a, b) -> Orp (pred env a, pred env b)
  | Aqua.Ast.Not e -> Inv (pred env e)
  | _ ->
    (* Fallback: compare the boolean value against true. *)
    Oplus (Eq, Pairf (func env e, Kf (Value.Bool true)))

(* Translate a closed query to (function, argument).  Top-level app/sel over
   a set expression become [iterate]s composed onto the translation of the
   set, so translations of the paper's examples take the paper's printed
   top-level forms. *)
let rec query (e : Aqua.Ast.expr) : query =
  match e with
  | Aqua.Ast.Extent s -> Term.query Id (Value.Named s)
  | Aqua.Ast.App (l, set) ->
    let inner = query set in
    Term.query
      (compose_or_id (Iterate (Kp true, func [ l.v ] l.body)) inner.body)
      inner.arg
  | Aqua.Ast.Sel (l, set) ->
    let inner = query set in
    Term.query
      (compose_or_id (Iterate (pred [ l.v ] l.body, Id)) inner.body)
      inner.arg
  | Aqua.Ast.Flatten e ->
    let inner = query e in
    Term.query (compose_or_id Flat inner.body) inner.arg
  | Aqua.Ast.Join (p, f, a, b)
    when not (Aqua.Vars.is_free p.v1 a || Aqua.Vars.is_free p.v2 b) ->
    let qa = query a and qb = query b in
    let body2 = [ p.v1; p.v2 ] in
    let j = Join (pred body2 p.body2, func body2 f.Aqua.Ast.body2) in
    let feed =
      match qa.body, qb.body with
      | Id, Id -> j
      | fa, fb -> Compose (j, Times (fa, fb))
    in
    Term.query feed (Value.Pair (qa.arg, qb.arg))
  | e when Aqua.Vars.S.is_empty (Aqua.Vars.free_vars e) ->
    (* Any other closed expression: translate under a dummy environment. *)
    Term.query (func [ "$closed" ] e) Value.Unit
  | _ -> fail "query translation requires a closed expression"

and compose_or_id f g = f *^ g

(* Metrics for the Section 4.2 experiment. *)
type metrics = {
  aqua_size : int;       (** n: nodes in the source *)
  nesting : int;         (** m: max simultaneously bound variables *)
  kola_size : int;       (** nodes in the translation *)
  ratio : float;         (** kola_size / aqua_size *)
}

let measure (e : Aqua.Ast.expr) : metrics =
  let q = query e in
  let aqua_size = Aqua.Ast.size e in
  let kola_size = Term.size_func q.body + Value.size q.arg in
  {
    aqua_size;
    nesting = Aqua.Ast.max_nesting e;
    kola_size;
    ratio = float_of_int kola_size /. float_of_int aqua_size;
  }

(* Benchmark harness: one group per experiment in DESIGN.md's index.

   The paper's evaluation is qualitative (worked derivations) plus the
   quantified claims of Section 4.2; for each table/figure we both measure
   wall time with Bechamel and print the claim-vs-measured series the
   corresponding experiment checks (sizes, cost counters, rule counts). *)

open Bechamel
open Toolkit
open Kola

let quota = ref 0.25
let fast = ref false
let smoke = ref false
let parallel_only = ref false
let hashcons_only = ref false
let egraph_only = ref false
let serve_only = ref false
let exec_only = ref false
let out_file = ref "BENCH_engine.json"
let out_file_given = ref false

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)

let benchmark_group name tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if !fast then 0.05 else !quota))
      ~kde:None ()
  in
  let grouped = Test.make_grouped ~name tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun test_name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (test_name, ns) :: acc)
      results []
  in
  Fmt.pr "@.## %s@." name;
  List.iter
    (fun (test_name, ns) ->
      let pretty =
        if ns > 1e9 then Fmt.str "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Fmt.str "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%8.2f us" (ns /. 1e3)
        else Fmt.str "%8.1f ns" ns
      in
      Fmt.pr "  %-58s %s@." test_name pretty)
    (List.sort compare rows)

let t name f = Test.make ~name (Staged.stage f)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let tiny_db = Datagen.Store.db (Datagen.Store.tiny ())

let store_of n seed =
  Datagen.Store.db
    (Datagen.Store.generate
       {
         Datagen.Store.default_params with
         people = n;
         vehicles = (n * 2 / 3);
         addresses = max 5 (n / 2);
         seed;
       })

let db_mid = store_of 60 21

let tuples_of ~db ~backend q =
  let ctx = Eval.ctx ~db ~backend () in
  ignore (Eval.run ctx q);
  ctx.Eval.counters.Eval.tuples

(* ------------------------------------------------------------------ *)
(* E-T1 / E-T2: Tables 1 and 2 micro-benchmarks                        *)

let alice = List.hd (Datagen.Store.tiny ()).Datagen.Store.persons
let pair_ints = Value.pair (Value.Int 1) (Value.Int 2)
let small_set = Value.set (List.init 32 (fun i -> Value.Int i))

let table1_tests =
  [
    t "id" (fun () -> Eval.eval_func Term.Id pair_ints);
    t "pi1" (fun () -> Eval.eval_func Term.Pi1 pair_ints);
    t "compose(city,addr)" (fun () ->
        Eval.eval_func (Term.Compose (Term.Prim "city", Term.Prim "addr")) alice);
    t "pairf(age,age)" (fun () ->
        Eval.eval_func (Term.Pairf (Term.Prim "age", Term.Prim "age")) alice);
    t "con" (fun () ->
        Eval.eval_func
          (Term.Con (Term.Kp true, Term.Kf (Value.Int 1), Term.Kf (Value.Int 2)))
          Value.Unit);
    t "oplus-gt" (fun () ->
        Eval.eval_pred
          (Term.Oplus (Term.Gt, Term.Pairf (Term.Prim "age", Term.Kf (Value.Int 25))))
          alice);
    t "in-of-32" (fun () ->
        Eval.eval_pred Term.In (Value.pair (Value.Int 31) small_set));
  ]

let table2_tests =
  let nested =
    Value.set (List.init 8 (fun i -> Value.set [ Value.Int i; Value.Int (i + 1) ]))
  in
  [
    t "flat(8x2)" (fun () -> Eval.eval_func Term.Flat nested);
    t "iterate-filter-map(32)" (fun () ->
        Eval.eval_func
          (Term.Iterate
             ( Term.Oplus (Term.Gt, Term.Pairf (Term.Id, Term.Kf (Value.Int 16))),
               Term.Id ))
          small_set);
    t "iter-env(32)" (fun () ->
        Eval.eval_func (Term.Iter (Term.Gt, Term.Pi2))
          (Value.pair (Value.Int 16) small_set));
    t "join-naive(32x32)" (fun () ->
        Eval.eval_func (Term.Join (Term.Gt, Term.Id))
          (Value.pair small_set small_set));
    t "nest(32 rel 32)" (fun () ->
        Eval.eval_func (Term.Nest (Term.Id, Term.Id))
          (Value.pair small_set small_set));
    t "unnest(8x2)" (fun () ->
        Eval.eval_func (Term.Unnest (Term.Pi1, Term.Pi2))
          (Value.set
             (List.init 8 (fun i ->
                  Value.pair (Value.Int i) (Value.set [ Value.Int i ])))));
  ]

(* ------------------------------------------------------------------ *)
(* E-F1: Figure 1 transformations — AQUA baseline vs KOLA rules        *)

let fig1_tests =
  [
    t "T1-aqua-baseline (head+body routines)" (fun () ->
        Baseline.Engine.run [ Baseline.Catalog.t1_compose_maps ]
          Aqua.Examples.t1_source);
    t "T1-kola-rules (declarative)" (fun () ->
        Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source);
    t "T2-aqua-baseline (alpha-compare head routine)" (fun () ->
        Baseline.Engine.run [ Baseline.Catalog.t2_decompose_predicate ]
          Aqua.Examples.t2_source);
    t "T2-kola-rules (rules 11,13,12-1)" (fun () ->
        let o = Coko.Block.run Coko.Programs.compose_iterates Paper.t2k_source in
        Coko.Block.run Coko.Programs.decompose_predicate o.Coko.Block.query);
  ]

(* ------------------------------------------------------------------ *)
(* E-F2 / E-F6: code motion applicability and transformation           *)

let fig6_tests =
  [
    t "K4-code-motion (applies, rules 13..16)" (fun () ->
        Coko.Block.run Coko.Programs.code_motion Paper.k4);
    t "K3-code-motion (structurally rejected)" (fun () ->
        Coko.Block.run Coko.Programs.code_motion Paper.k3);
    t "A4-aqua-code-motion (env analysis head routine)" (fun () ->
        Baseline.Engine.run [ Baseline.Catalog.code_motion ] Aqua.Examples.a4);
    t "A3-aqua-code-motion (env analysis rejects)" (fun () ->
        Baseline.Engine.run [ Baseline.Catalog.code_motion ] Aqua.Examples.a3);
  ]

(* ------------------------------------------------------------------ *)
(* E-F3: Figure 3 — evaluating KG1 vs untangled KG2, naive vs hashed   *)

let fig3_tests =
  List.concat_map
    (fun (label, db) ->
      [
        t (Fmt.str "KG1-naive %s" label) (fun () ->
            Eval.eval_query ~db Paper.kg1);
        t (Fmt.str "KG2-naive %s" label) (fun () ->
            Eval.eval_query ~db Paper.kg2);
        t (Fmt.str "KG2-hashed %s" label) (fun () ->
            Eval.eval_query ~db ~backend:Eval.Hashed Paper.kg2);
      ])
    [ ("n=30", store_of 30 1); ("n=60", db_mid) ]

(* The paper-shape series: who wins and by what factor, as data sizes
   grow.  Counters make this hardware-independent. *)
let fig3_cost_table () =
  Fmt.pr "@.## fig3_garage_cost (tuples touched; counters, not wall time)@.";
  Fmt.pr "  %8s %12s %12s %12s %9s@." "|V|,|P|" "KG1-naive" "KG2-naive"
    "KG2-hashed" "speedup";
  List.iter
    (fun n ->
      let db = store_of n (100 + n) in
      let kg1 = tuples_of ~db ~backend:Eval.Naive Paper.kg1 in
      let kg2n = tuples_of ~db ~backend:Eval.Naive Paper.kg2 in
      let kg2h = tuples_of ~db ~backend:Eval.Hashed Paper.kg2 in
      Fmt.pr "  %8s %12d %12d %12d %8.1fx@."
        (Fmt.str "%d,%d" (n * 2 / 3) n)
        kg1 kg2n kg2h
        (float_of_int kg1 /. float_of_int (max 1 kg2h)))
    (if !fast then [ 30; 60 ] else [ 30; 60; 120; 240; 480 ])

(* ------------------------------------------------------------------ *)
(* E-F4: Figure 4 rewrites                                             *)

let fig4_tests =
  [
    t "T1K-derivation (11,5,6)" (fun () ->
        Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source);
    t "T2K-derivation (11,..,13,12-1)" (fun () ->
        let o = Coko.Block.run Coko.Programs.compose_iterates Paper.t2k_source in
        Coko.Block.run Coko.Programs.decompose_predicate o.Coko.Block.query);
  ]

(* ------------------------------------------------------------------ *)
(* E-F8: the five-step untangler as nesting depth grows                *)

let untangle_depths = [ 1; 2; 3; 4; 6; 8 ]

let fig8_tests =
  List.map
    (fun depth ->
      let q = Translate.Compile.query (Aqua.Examples.hidden_join_depth depth) in
      t (Fmt.str "untangle depth=%d" depth) (fun () ->
          Coko.Programs.hidden_join q))
    untangle_depths

let fig8_table () =
  Fmt.pr "@.## fig8_untangle (gradual rules over growing nesting depth)@.";
  Fmt.pr "  %6s %10s %10s %10s %8s@." "depth" "size-in" "size-out" "firings"
    "applied";
  List.iter
    (fun depth ->
      let q = Translate.Compile.query (Aqua.Examples.hidden_join_depth depth) in
      let o, blocks = Coko.Programs.hidden_join q in
      Fmt.pr "  %6d %10d %10d %10d %8b@." depth
        (Term.size_func q.Term.body)
        (Term.size_func o.Coko.Block.query.Term.body)
        (List.length o.Coko.Block.trace)
        (List.for_all snd blocks))
    untangle_depths

(* ------------------------------------------------------------------ *)
(* E-C1: Section 4.2 — translated query size is O(mn), observed < 2x   *)

let sec42_table () =
  Fmt.pr "@.## sec42_translation_size (paper: O(mn), observed < 2x)@.";
  Fmt.pr "  %6s %8s %8s %8s %8s %10s@." "m" "queries" "avg n" "avg kola"
    "ratio" "max ratio";
  List.iter
    (fun depth ->
      let queries = Datagen.Queries.suite ~count:50 ~seed:(1000 + depth) ~depth in
      let ms = List.map Translate.Compile.measure queries in
      let n = List.length ms in
      let favg f = List.fold_left (fun a m -> a +. f m) 0. ms /. float_of_int n in
      let fmax f = List.fold_left (fun a m -> max a (f m)) 0. ms in
      Fmt.pr "  %6d %8d %8.1f %8.1f %8.2f %10.2f@." depth n
        (favg (fun m -> float_of_int m.Translate.Compile.aqua_size))
        (favg (fun m -> float_of_int m.Translate.Compile.kola_size))
        (favg (fun m -> m.Translate.Compile.ratio))
        (fmax (fun m -> m.Translate.Compile.ratio)))
    [ 1; 2; 3; 4; 5; 6 ];
  (* the paper's own example *)
  let g = Translate.Compile.measure Aqua.Examples.garage in
  Fmt.pr "  garage query: n=%d m=%d kola=%d ratio=%.2f@."
    g.Translate.Compile.aqua_size g.Translate.Compile.nesting
    g.Translate.Compile.kola_size g.Translate.Compile.ratio

let sec42_tests =
  [
    t "translate garage query" (fun () ->
        Translate.Compile.query Aqua.Examples.garage);
    t "translate depth-5 random query" (fun () ->
        Translate.Compile.query (Datagen.Queries.query ~seed:5 ~depth:5));
  ]

(* ------------------------------------------------------------------ *)
(* E-C2: rule certification throughput                                 *)

let cert_table () =
  Fmt.pr "@.## rule_certification (analogue of the paper's 500 LP proofs)@.";
  let results =
    Rules.Cert.certify_all
      ~samples:(if !fast then 5 else 25)
      ~inputs:8 Rules.Catalog.all
  in
  let total_instances =
    List.fold_left (fun a r -> a + r.Rules.Cert.instances) 0 results
  in
  let total_checks = List.fold_left (fun a r -> a + r.Rules.Cert.checks) 0 results in
  let certified = List.filter Rules.Cert.certified results in
  Fmt.pr "  rules: %d   certified: %d   instantiations: %d   checks: %d@."
    (List.length results) (List.length certified) total_instances total_checks;
  let refuted = Rules.Cert.certify ~samples:60 ~inputs:20 Rules.Basic.r13_paper in
  Fmt.pr "  r13 as printed in the paper: %s@."
    (match refuted.Rules.Cert.counterexample with
    | Some _ -> "REFUTED (boundary erratum, repaired with the converse former)"
    | None -> "unexpectedly certified")

let cert_tests =
  [
    t "certify rule 11 (10 instances)" (fun () ->
        Rules.Cert.certify ~samples:10 ~inputs:4 (Rules.Catalog.find_exn "r11"));
  ]

(* ------------------------------------------------------------------ *)
(* Matching throughput: the unification cost the paper's design keeps  *)
(* linear                                                              *)

let matching_tests =
  [
    t "match rule 11 against KG1 (fails everywhere)" (fun () ->
        Rewrite.Engine.step_once (Rules.Catalog.rules [ "r11" ]) Paper.kg1);
    t "full catalog one step on KG1" (fun () ->
        Rewrite.Engine.step_once Rules.Catalog.all Paper.kg1);
    t "aqua baseline one step on garage" (fun () ->
        Baseline.Engine.step_once Baseline.Catalog.all Aqua.Examples.garage);
  ]

(* ------------------------------------------------------------------ *)
(* Ablation: monolithic hidden-join rule vs the gradual five steps     *)

let ablation_tests =
  List.concat_map
    (fun depth ->
      let q = Translate.Compile.query (Aqua.Examples.hidden_join_depth depth) in
      [
        t (Fmt.str "monolithic depth=%d" depth) (fun () ->
            Baseline.Monolithic.transform q);
        t (Fmt.str "gradual depth=%d" depth) (fun () ->
            Coko.Programs.hidden_join q);
      ])
    [ 1; 2; 4 ]

let ablation_table () =
  Fmt.pr "@.## ablation_monolithic_vs_gradual (Sec 4.2 discussion)@.";
  Fmt.pr "  %6s %12s %12s %14s@." "depth" "monolithic" "gradual" "mono-head-cost";
  List.iter
    (fun depth ->
      let q = Translate.Compile.query (Aqua.Examples.hidden_join_depth depth) in
      let mono = Option.is_some (Baseline.Monolithic.transform q) in
      let _, blocks = Coko.Programs.hidden_join q in
      Fmt.pr "  %6d %12s %12b %14d@." depth
        (if mono then "applies" else "FAILS")
        (List.for_all snd blocks)
        (Baseline.Monolithic.match_cost q))
    [ 1; 2; 3; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Search vs COKO strategies (the paper's Section 1.1 open dimension)  *)

let search_tests =
  [
    t "search discovers T1K" (fun () ->
        Optimizer.Search.reaches Paper.t1k_source Paper.t1k_target);
    t "coko derives T1K" (fun () ->
        Coko.Block.run Coko.Programs.compose_iterates Paper.t1k_source);
  ]

let search_table () =
  Fmt.pr "@.## search_vs_coko (uninformed search vs rule blocks)@.";
  let rules =
    Rules.Catalog.all
    @ List.map Rewrite.Rule.flip (Rules.Catalog.rules [ "r14"; "r12" ])
  in
  let attempt name src target ~max_depth ~max_states =
    let config = { Optimizer.Search.default_config with rules; max_depth; max_states } in
    let t0 = Kola_telemetry.Telemetry.now () in
    let reached = Option.is_some (Optimizer.Search.reaches ~config src target) in
    Fmt.pr "  %-22s %-12s (%.2fs, depth<=%d, states<=%d)@." name
      (if reached then "discovered" else "NOT FOUND")
      (Kola_telemetry.Telemetry.now () -. t0) max_depth max_states
  in
  attempt "T1K (3 firings)" Paper.t1k_source Paper.t1k_target ~max_depth:6
    ~max_states:2_000;
  attempt "T2K (6 firings)" Paper.t2k_source Paper.t2k_target ~max_depth:8
    ~max_states:4_000;
  if not !fast then
    attempt "K4 code motion (9)" Paper.k4 Paper.k4_optimized ~max_depth:12
      ~max_states:8_000;
  attempt "KG1->KG2 (25 firings)" Paper.kg1 Paper.kg2 ~max_depth:6
    ~max_states:1_000;
  Fmt.pr "  (COKO's five rule blocks derive KG1->KG2 in ~0.2 ms: strategies@.";
  Fmt.pr "   are what make the long derivation tractable, as the paper argues)@."

(* ------------------------------------------------------------------ *)
(* End-to-end: the optimizer pipeline                                  *)

let pipeline_tests =
  [
    t "optimize garage query end-to-end (tiny)" (fun () ->
        Optimizer.Pipeline.optimize ~db:tiny_db Aqua.Examples.garage);
    t "parse+optimize OQL (tiny)" (fun () ->
        Optimizer.Pipeline.optimize_oql ~db:tiny_db
          "select p.age from p in P where p.age > 25");
  ]

(* ------------------------------------------------------------------ *)
(* Engine internals: head-symbol dispatch, hashed dedup, memoized      *)
(* costing.  The table and BENCH_engine.json carry the same numbers:   *)
(* the table for humans, the JSON for regression tracking.             *)

let engine_queries =
  [ ("T1K", Paper.t1k_source); ("T2K", Paper.t2k_source);
    ("K4", Paper.k4); ("KG1", Paper.kg1) ]

let run_engine ~indexed q =
  Rewrite.Engine.run ~indexed ~fuel:40 Rules.Catalog.all q

let engine_tests =
  let idx = Rewrite.Index.build Rules.Catalog.all in
  [
    t "step_once naive (KG1, full catalog)" (fun () ->
        Rewrite.Engine.step_once Rules.Catalog.all Paper.kg1);
    t "step_once indexed (KG1, full catalog)" (fun () ->
        Rewrite.Engine.step_once_indexed idx Paper.kg1);
    t "run naive (T1K to fixpoint)" (fun () -> run_engine ~indexed:false Paper.t1k_source);
    t "run indexed (T1K to fixpoint)" (fun () -> run_engine ~indexed:true Paper.t1k_source);
    t "dedup key: canonical string (KG1)" (fun () ->
        Optimizer.Search.canonical Paper.kg1);
    t "dedup key: hashed canonical (KG1)" (fun () ->
        Term.Canonical.of_query Paper.kg1);
  ]

let time_per ~repeats f =
  ignore (f ());  (* warm up *)
  let t0 = Kola_telemetry.Telemetry.now () in
  for _ = 1 to repeats do
    ignore (f ())
  done;
  (Kola_telemetry.Telemetry.now () -. t0) *. 1e9 /. float_of_int repeats

(* ------------------------------------------------------------------ *)
(* parallel_scaling: the same exploration at 1/2/4/8 domains.  Each    *)
(* timed run uses a fresh cold cost cache so the costing work — the    *)
(* part the pool fans out — is real, and includes pool spawn/shutdown, *)
(* so the speedup is what a caller actually observes.                  *)

type parallel_row = {
  pq : string;
  pjobs : int;
  pns : float;
  pspeedup : float;       (* vs the jobs = 1 run of the same workload *)
  pmatches : bool;        (* outcome identical to the jobs = 1 run *)
}

let parallel_workloads =
  (* the Figure 4 derivation sources and the Figure 6 code-motion source *)
  [ ("T1K", Paper.t1k_source, 4, 400);
    ("T2K", Paper.t2k_source, 4, 300);
    ("K4", Paper.k4, 3, 250) ]

let parallel_scaling_rows ~jobs_list ~repeats =
  List.concat_map
    (fun (name, q, max_depth, max_states) ->
      let explore jobs =
        Optimizer.Search.explore
          ~config:
            {
              Optimizer.Search.default_config with
              max_depth;
              max_states;
              jobs;
              cost_cache = Some (Optimizer.Cost.cache ());
            }
          q
      in
      let baseline = explore 1 in
      let base_ns = ref nan in
      List.map
        (fun jobs ->
          let o = explore jobs in
          let ns = time_per ~repeats (fun () -> explore jobs) in
          if jobs = 1 then base_ns := ns;
          let matches =
            Kola.Term.equal_query o.Optimizer.Search.best.Optimizer.Search.query
              baseline.Optimizer.Search.best.Optimizer.Search.query
            && o.Optimizer.Search.best.Optimizer.Search.path
               = baseline.Optimizer.Search.best.Optimizer.Search.path
            && o.Optimizer.Search.explored = baseline.Optimizer.Search.explored
            && o.Optimizer.Search.frontier_exhausted
               = baseline.Optimizer.Search.frontier_exhausted
          in
          { pq = name; pjobs = jobs; pns = ns; pspeedup = !base_ns /. ns;
            pmatches = matches })
        jobs_list)
    parallel_workloads

let parallel_table rows =
  Fmt.pr
    "@.## parallel_scaling (level-synchronous explore, cold cost cache)@.";
  Fmt.pr "  (host reports %d recommended domain(s))@."
    (Domain.recommended_domain_count ());
  Fmt.pr "  %-5s %6s %12s %9s %9s@." "query" "jobs" "wall" "speedup"
    "outcome";
  List.iter
    (fun r ->
      let pretty =
        if r.pns > 1e9 then Fmt.str "%8.2f s " (r.pns /. 1e9)
        else if r.pns > 1e6 then Fmt.str "%8.2f ms" (r.pns /. 1e6)
        else Fmt.str "%8.2f us" (r.pns /. 1e3)
      in
      Fmt.pr "  %-5s %6d %12s %8.2fx %9s@." r.pq r.pjobs pretty r.pspeedup
        (if r.pmatches then "identical" else "MISMATCH"))
    rows

let parallel_json rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "  \"parallel_scaling\": {\"recommended_domains\": %d, \"runs\": [\n"
       (Domain.recommended_domain_count ()));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"query\": %S, \"jobs\": %d, \"ns\": %.0f, \
            \"speedup_vs_seq\": %.2f, \"outcome_identical\": %b}%s\n"
           r.pq r.pjobs r.pns r.pspeedup r.pmatches
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* hashcons: the interned term core.  Microbenches time O(1) equality, *)
(* hash and canonical keys against their plain recursive counterparts  *)
(* on a deep term; the end-to-end rows time the same exploration with  *)
(* interning on and off — fresh cost caches each run — at several      *)
(* domain counts, checking the outcomes stay identical.                *)

let deep_n = 200

(* Two calls build structurally equal but physically distinct plain
   terms, so plain equality really walks all [deep_n] stages. *)
let deep_body () =
  Term.chain
    (List.init deep_n (fun i ->
         Term.Iterate
           ( Term.Oplus
               ( Term.Gt,
                 Term.Pairf
                   (Term.Prim (Fmt.str "f%d" (i mod 7)), Term.Kf (Value.Int i))
               ),
             Term.Prim (Fmt.str "g%d" (i mod 5)) )))

type hc_micro = { hname : string; hplain_ns : float; hhc_ns : float }

let hashcons_micro ~repeats () =
  let a = deep_body () and b = deep_body () in
  let qd = Term.query a (Value.Named "P") in
  let na = Term.Hc.of_func a and nb = Term.Hc.of_func b in
  let hqd = Term.Hc.of_query qd in
  (* the interned side is O(1) field reads; loop it more for resolution *)
  let fr = repeats * 50 in
  [
    {
      hname = "equality (deep term)";
      hplain_ns = time_per ~repeats (fun () -> Term.equal_func a b);
      hhc_ns = time_per ~repeats:fr (fun () -> Sys.opaque_identity (na == nb));
    };
    {
      hname = "hash (deep term)";
      hplain_ns = time_per ~repeats (fun () -> Term.hash_func a);
      hhc_ns =
        time_per ~repeats:fr (fun () -> Sys.opaque_identity na.Term.Hc.fhash);
    };
    {
      hname = "canonical key (deep query)";
      hplain_ns = time_per ~repeats (fun () -> Term.Canonical.of_query qd);
      hhc_ns = time_per ~repeats:fr (fun () -> Term.Hc.query_key hqd);
    };
  ]

type hc_row = {
  hrq : string;
  hrjobs : int;
  hlegacy_ns : float;
  hinterned_ns : float;
  hrspeedup : float;
  hridentical : bool;  (* legacy and interned outcomes bit-identical *)
}

(* Minimum over [trials] mean timings: explorations are milliseconds,
   where a single GC major slice or scheduler preemption skews one mean
   badly; the min of a few is the stable signal on a shared host. *)
let min_time ~trials ~repeats f =
  let rec go best n =
    if n <= 0 then best else go (Float.min best (time_per ~repeats f)) (n - 1)
  in
  go (time_per ~repeats f) (trials - 1)

let hashcons_scaling_rows ~jobs_list ~repeats =
  List.concat_map
    (fun (name, q, max_depth, max_states) ->
      let explore ~interned jobs =
        Optimizer.Search.explore
          ~config:
            {
              Optimizer.Search.default_config with
              max_depth;
              max_states;
              jobs;
              interned;
              cost_cache = Some (Optimizer.Cost.cache ());
              hc_cost_cache = Some (Optimizer.Cost.hc_cache ());
            }
          q
      in
      List.map
        (fun jobs ->
          let legacy = explore ~interned:false jobs in
          let interned = explore ~interned:true jobs in
          let identical =
            Kola.Term.equal_query
              legacy.Optimizer.Search.best.Optimizer.Search.query
              interned.Optimizer.Search.best.Optimizer.Search.query
            && legacy.Optimizer.Search.best.Optimizer.Search.path
               = interned.Optimizer.Search.best.Optimizer.Search.path
            && legacy.Optimizer.Search.explored
               = interned.Optimizer.Search.explored
            && legacy.Optimizer.Search.frontier_exhausted
               = interned.Optimizer.Search.frontier_exhausted
          in
          let lns =
            min_time ~trials:3 ~repeats (fun () -> explore ~interned:false jobs)
          in
          let ins =
            min_time ~trials:3 ~repeats (fun () -> explore ~interned:true jobs)
          in
          {
            hrq = name;
            hrjobs = jobs;
            hlegacy_ns = lns;
            hinterned_ns = ins;
            hrspeedup = lns /. ins;
            hridentical = identical;
          })
        jobs_list)
    parallel_workloads

let hashcons_table micros rows =
  let pretty ns =
    if ns > 1e9 then Fmt.str "%9.2f s " (ns /. 1e9)
    else if ns > 1e6 then Fmt.str "%9.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Fmt.str "%9.2f us" (ns /. 1e3)
    else Fmt.str "%9.1f ns" ns
  in
  Fmt.pr "@.## hashcons (interned term core, deep term = %d stages)@." deep_n;
  Fmt.pr "  %-28s %12s %12s %9s@." "micro" "plain" "interned" "ratio";
  List.iter
    (fun m ->
      Fmt.pr "  %-28s %12s %12s %8.0fx@." m.hname (pretty m.hplain_ns)
        (pretty m.hhc_ns)
        (m.hplain_ns /. m.hhc_ns))
    micros;
  Fmt.pr "  %-5s %6s %12s %12s %9s %9s@." "query" "jobs" "legacy" "interned"
    "speedup" "outcome";
  List.iter
    (fun r ->
      Fmt.pr "  %-5s %6d %12s %12s %8.2fx %9s@." r.hrq r.hrjobs
        (pretty r.hlegacy_ns) (pretty r.hinterned_ns) r.hrspeedup
        (if r.hridentical then "identical" else "MISMATCH"))
    rows;
  let s = Term.Hc.intern_stats () in
  Fmt.pr
    "  intern tables: %d entries, %d hits / %d misses (%.3f sharing), max \
     bucket %d@."
    s.Hashcons.entries s.Hashcons.hits s.Hashcons.misses
    (let total = s.Hashcons.hits + s.Hashcons.misses in
     if total = 0 then 0.
     else float_of_int s.Hashcons.hits /. float_of_int total)
    s.Hashcons.max_bucket

(* The same numbers as a JSON fragment for BENCH_engine.json (or the
   stand-alone BENCH_hashcons.json). *)
let hashcons_json micros rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "  \"hashcons\": {\"micro\": [\n";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": %S, \"plain_ns\": %.1f, \"interned_ns\": %.1f, \
            \"ratio\": %.1f}%s\n"
           m.hname m.hplain_ns m.hhc_ns
           (m.hplain_ns /. m.hhc_ns)
           (if i = List.length micros - 1 then "" else ",")))
    micros;
  Buffer.add_string buf "  ], \"search\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"query\": %S, \"jobs\": %d, \"legacy_ns\": %.0f, \
            \"interned_ns\": %.0f, \"speedup\": %.2f, \"outcome_identical\": \
            %b}%s\n"
           r.hrq r.hrjobs r.hlegacy_ns r.hinterned_ns r.hrspeedup
           r.hridentical
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* egraph_saturation: equality saturation vs bounded BFS on the        *)
(* E-F4/E-F6/E-F8 workloads.  Two comparisons per workload:            *)
(*   cost    — egraph extract-after-saturate vs BFS best at            *)
(*             default_config depth, same forward catalog;             *)
(*   wall    — egraph saturation vs BFS *full exploration* of the same *)
(*             equivalence closure: e-class unions are symmetric, so   *)
(*             the BFS analogue runs the catalog plus every flip at    *)
(*             depth 5 (where its frontier stops fitting any budget).  *)

module Saturate = Kola_egraph.Saturate

type egraph_row = {
  gq : string;
  gbfs_cost : float;       (* BFS best, default_config depth, forward rules *)
  geg_cost : float;        (* egraph best after extraction + re-measuring;
                              the source is always a candidate, so never
                              worse than doing nothing *)
  gbfs_full_ns : float;    (* symmetric closure at depth 5, state-capped *)
  gbfs_explored : int;
  gbfs_exhausted : bool;   (* whether capped BFS even covered depth 5 *)
  geg_ns : float;
  gspeedup : float;        (* gbfs_full_ns / geg_ns *)
  gjobs : int;             (* domains the match phase fanned out over *)
  gstats : Saturate.stats;
}

let symmetric_catalog =
  Rules.Catalog.all @ List.map Rewrite.Rule.flip Rules.Catalog.all

let egraph_rows () =
  let full = not (!fast || !smoke) in
  let cap = if full then 5_000 else 1_000 in
  let budgets =
    if full then Saturate.default_budgets
    else
      { Saturate.max_enodes = 4_000; max_iterations = 10; max_millis = 600. }
  in
  let wall f =
    let t0 = Kola_telemetry.Telemetry.now () in
    let r = f () in
    (r, (Kola_telemetry.Telemetry.now () -. t0) *. 1e9)
  in
  List.map
    (fun (name, q, states) ->
      let bfs =
        Optimizer.Search.explore
          ~config:
            {
              Optimizer.Search.default_config with
              hc_cost_cache = Some (Optimizer.Cost.hc_cache ());
            }
          q
      in
      let eg_config =
        {
          Optimizer.Search.default_config with
          engine = Optimizer.Search.Egraph;
          egraph_budgets = budgets;
          hc_cost_cache = Some (Optimizer.Cost.hc_cache ());
        }
      in
      let eg, eg_ns = wall (fun () -> Optimizer.Search.explore ~config:eg_config q) in
      let bfs_full, bfs_full_ns =
        wall (fun () ->
            Optimizer.Search.explore
              ~config:
                {
                  Optimizer.Search.default_config with
                  rules = symmetric_catalog;
                  max_depth = 5;
                  max_states = states;
                  hc_cost_cache = Some (Optimizer.Cost.hc_cache ());
                }
              q)
      in
      {
        gq = name;
        gbfs_cost = bfs.Optimizer.Search.best.Optimizer.Search.cost;
        geg_cost = eg.Optimizer.Search.best.Optimizer.Search.cost;
        gbfs_full_ns = bfs_full_ns;
        gbfs_explored = bfs_full.Optimizer.Search.explored;
        gbfs_exhausted = bfs_full.Optimizer.Search.frontier_exhausted;
        geg_ns = eg_ns;
        gspeedup = bfs_full_ns /. eg_ns;
        gjobs = Optimizer.Search.resolved_jobs eg_config;
        gstats = Option.get eg.Optimizer.Search.saturation;
      })
    [
      ("T1K (E-F4)", Paper.t1k_source, cap);
      ("T2K (E-F4)", Paper.t2k_source, cap);
      ("K4 (E-F6)", Paper.k4, cap);
      ("KG1 (E-F8)", Paper.kg1, max 200 (cap / 2));
    ]

let egraph_table rows =
  Fmt.pr "@.## egraph_saturation (extract-after-saturate vs bounded BFS)@.";
  Fmt.pr "  %-11s %9s %9s %12s %12s %9s %5s %8s %9s %s@." "query" "bfs-cost"
    "eg-cost" "bfs-d5-wall" "eg-wall" "speedup" "jobs" "skipped" "deferred"
    "saturation";
  List.iter
    (fun r ->
      let pretty ns =
        if ns > 1e9 then Fmt.str "%9.2f s " (ns /. 1e9)
        else if ns > 1e6 then Fmt.str "%9.2f ms" (ns /. 1e6)
        else Fmt.str "%9.2f us" (ns /. 1e3)
      in
      Fmt.pr "  %-11s %9.1f %9.1f %12s %12s %8.1fx %5d %8d %9d %s@." r.gq
        r.gbfs_cost r.geg_cost
        (pretty r.gbfs_full_ns)
        (pretty r.geg_ns) r.gspeedup r.gjobs r.gstats.Saturate.matches_skipped
        r.gstats.Saturate.rules_deferred
        (Fmt.str "%d nodes / %d classes / %d iters, stop: %s%s"
           r.gstats.Saturate.e_nodes r.gstats.Saturate.e_classes
           r.gstats.Saturate.iterations
           (Saturate.stop_reason_label r.gstats.Saturate.stop)
           (if r.gbfs_exhausted then "" else "; bfs frontier unfinished")))
    rows

let egraph_json rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "  \"egraph_saturation\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"query\": %S, \"bfs_default_cost\": %.2f, \
            \"egraph_cost\": %.2f, \"best_of_cost\": %.2f, \
            \"bfs_depth5_ns\": %.0f, \
            \"bfs_depth5_explored\": %d, \"bfs_depth5_exhausted\": %b, \
            \"egraph_ns\": %.0f, \"speedup_vs_bfs_depth5\": %.2f, \
            \"jobs\": %d, \"matches_skipped\": %d, \"rules_deferred\": %d, \
            \"e_nodes\": %d, \"e_classes\": %d, \"unions\": %d, \
            \"iterations\": %d, \"rebuild_ms\": %.3f, \"total_ms\": %.1f, \
            \"stop\": %S}%s\n"
           r.gq r.gbfs_cost r.geg_cost
           (Float.min r.gbfs_cost r.geg_cost)
           r.gbfs_full_ns r.gbfs_explored
           r.gbfs_exhausted r.geg_ns r.gspeedup r.gjobs
           r.gstats.Saturate.matches_skipped r.gstats.Saturate.rules_deferred
           r.gstats.Saturate.e_nodes
           r.gstats.Saturate.e_classes r.gstats.Saturate.unions
           r.gstats.Saturate.iterations r.gstats.Saturate.rebuild_ms
           r.gstats.Saturate.total_ms
           (Saturate.stop_reason_label r.gstats.Saturate.stop)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]";
  Buffer.contents buf

let engine_report ?(parallel_rows = []) ?(hashcons_fragment = "")
    ?(egraph_fragment = "") () =
  let repeats = if !fast then 5 else 50 in
  Fmt.pr
    "@.## engine_internals (head-symbol index, hashed dedup, cost memo)@.";
  Fmt.pr "  %-5s %9s %9s %7s %8s %12s %12s@." "query" "nv-att" "ix-att"
    "ratio" "firings" "nv-ns/fire" "ix-ns/fire";
  let query_rows =
    List.map
      (fun (name, q) ->
        let naive = run_engine ~indexed:false q in
        let indexed = run_engine ~indexed:true q in
        let na = naive.Rewrite.Engine.stats.Rewrite.Engine.attempts in
        let ia = indexed.Rewrite.Engine.stats.Rewrite.Engine.attempts in
        let firings = naive.Rewrite.Engine.stats.Rewrite.Engine.firings in
        let per_firing ns = ns /. float_of_int (max 1 firings) in
        let nv_ns =
          per_firing (time_per ~repeats (fun () -> run_engine ~indexed:false q))
        in
        let ix_ns =
          per_firing (time_per ~repeats (fun () -> run_engine ~indexed:true q))
        in
        let ratio = float_of_int na /. float_of_int (max 1 ia) in
        Fmt.pr "  %-5s %9d %9d %6.1fx %8d %12.0f %12.0f@." name na ia ratio
          firings nv_ns ix_ns;
        (name, na, ia, ratio, firings, nv_ns, ix_ns))
      engine_queries
  in
  (* exploration throughput: same search, dispatch on/off, cold cache each *)
  let explore_states = if !fast then 40 else 200 in
  let explore_cfg indexed cache =
    {
      Optimizer.Search.default_config with
      max_depth = 3;
      max_states = explore_states;
      indexed;
      cost_cache = Some cache;
    }
  in
  let timed_explore indexed =
    let cache = Optimizer.Cost.cache () in
    let t0 = Kola_telemetry.Telemetry.now () in
    let o =
      Optimizer.Search.explore ~config:(explore_cfg indexed cache)
        Paper.t1k_source
    in
    let ns = (Kola_telemetry.Telemetry.now () -. t0) *. 1e9 in
    (o, ns /. float_of_int (max 1 o.Optimizer.Search.explored))
  in
  let naive_o, naive_ns_state = timed_explore false in
  let _, indexed_ns_state = timed_explore true in
  (* cache behaviour: cold exploration then an identical warm one *)
  let cache = Optimizer.Cost.cache () in
  let warm_cfg = explore_cfg true cache in
  let cold = Optimizer.Search.explore ~config:warm_cfg Paper.t1k_source in
  let warm = Optimizer.Search.explore ~config:warm_cfg Paper.t1k_source in
  Fmt.pr "  explore T1K: %d states, naive %.0f ns/state, indexed %.0f ns/state@."
    naive_o.Optimizer.Search.explored naive_ns_state indexed_ns_state;
  Fmt.pr "  cost cache:  cold %d misses / %d hits, warm %d misses / %d hits@."
    cold.Optimizer.Search.cache_misses cold.Optimizer.Search.cache_hits
    warm.Optimizer.Search.cache_misses warm.Optimizer.Search.cache_hits;
  (* tracing overhead guard: the identical warm-cache exploration with
     the telemetry session off and then on.  The off row is the one the
     <3%-regression acceptance bound in EXPERIMENTS.md watches — with no
     session every record call must cost a single atomic read. *)
  let tracing_repeats = if !fast || !smoke then 20 else 100 in
  let tr_explore () =
    Optimizer.Search.explore ~config:warm_cfg Paper.t1k_source
  in
  let tracing_off_ns = min_time ~trials:3 ~repeats:tracing_repeats tr_explore in
  Kola_telemetry.Telemetry.start ();
  let tracing_on_ns = min_time ~trials:3 ~repeats:tracing_repeats tr_explore in
  ignore (Kola_telemetry.Telemetry.stop ());
  let tracing_overhead_pct =
    (tracing_on_ns -. tracing_off_ns) /. tracing_off_ns *. 100.
  in
  Fmt.pr
    "  tracing:     off %.0f ns/explore, on %.0f ns/explore (overhead \
     %+.1f%%)@."
    tracing_off_ns tracing_on_ns tracing_overhead_pct;
  (* the same numbers, machine-readable *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Fmt.str "  \"mode\": \"%s\",\n"
       (if !smoke then "smoke" else if !fast then "fast" else "full"));
  Buffer.add_string buf "  \"queries\": [\n";
  List.iteri
    (fun i (name, na, ia, ratio, firings, nv_ns, ix_ns) ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": %S, \"naive_attempts\": %d, \
            \"indexed_attempts\": %d, \"attempts_ratio\": %.2f, \
            \"firings\": %d, \"naive_ns_per_firing\": %.0f, \
            \"indexed_ns_per_firing\": %.0f}%s\n"
           name na ia ratio firings nv_ns ix_ns
           (if i = List.length query_rows - 1 then "" else ",")))
    query_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Fmt.str
       "  \"explore\": {\"query\": \"T1K\", \"states\": %d, \
        \"naive_ns_per_state\": %.0f, \"indexed_ns_per_state\": %.0f},\n"
       naive_o.Optimizer.Search.explored naive_ns_state indexed_ns_state);
  Buffer.add_string buf
    (Fmt.str
       "  \"cost_cache\": {\"cold_misses\": %d, \"cold_hits\": %d, \
        \"warm_misses\": %d, \"warm_hits\": %d},\n"
       cold.Optimizer.Search.cache_misses cold.Optimizer.Search.cache_hits
       warm.Optimizer.Search.cache_misses warm.Optimizer.Search.cache_hits);
  Buffer.add_string buf
    (Fmt.str
       "  \"tracing\": {\"query\": \"T1K\", \"off_ns_per_explore\": %.0f, \
        \"on_ns_per_explore\": %.0f, \"overhead_pct\": %.2f},\n"
       tracing_off_ns tracing_on_ns tracing_overhead_pct);
  if hashcons_fragment <> "" then begin
    Buffer.add_string buf hashcons_fragment;
    Buffer.add_string buf ",\n"
  end;
  if egraph_fragment <> "" then begin
    Buffer.add_string buf egraph_fragment;
    Buffer.add_string buf ",\n"
  end;
  Buffer.add_string buf (parallel_json parallel_rows);
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "  wrote %s@." !out_file

(* ------------------------------------------------------------------ *)
(* serve: throughput and latency of the kolaoptd serving path.  An      *)
(* in-process daemon (worker domains, shared caches, admission queue)   *)
(* is driven by client threads over its Unix-domain socket — the full   *)
(* wire path: connect, JSON request line, optimize, JSON response.      *)
(*                                                                      *)
(* Each (engine x concurrency) cell runs the same workload twice: a     *)
(* cold phase over distinct parameterized queries (every request        *)
(* translates and searches from scratch; caches were flushed) and a     *)
(* warm phase replaying the identical queries (answered from the        *)
(* shared outcome cache).  Clients open one connection per request, so  *)
(* latency includes accept, admission queuing and worker scheduling.    *)

module Serve_bench = struct
  module Json = Kola_server.Json
  module Daemon = Kola_server.Daemon

  let now () = Kola_telemetry.Telemetry.now ()

  type row = {
    engine : string;
    concurrency : int;
    phase : string;  (* "cold" | "warm" *)
    requests : int;
    wall_s : float;
    throughput_rps : float;
    p50_ms : float;
    p95_ms : float;
    p99_ms : float;
    rejected : int;
    errors : int;
  }

  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then nan
    else
      let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

  (* Distinct canonical queries: the varying constant defeats the
     outcome cache within the cold phase, so every cold request is a
     real optimization. *)
  let workload n =
    Array.init n (fun i ->
        Fmt.str "select p.age from p in P where p.age > %d" i)

  let status j = Option.bind (Json.mem "status" j) Json.str

  let run_phase ~socket ~engine ~clients ~(queries : string array) ~phase =
    let m = Array.length queries in
    let lat = Array.make m 0. in
    let rejected = Atomic.make 0 in
    let errors = Atomic.make 0 in
    let t0 = now () in
    let client c =
      let i = ref c in
      while !i < m do
        let req =
          Json.Obj
            [
              ("query", Json.Str queries.(!i)); ("engine", Json.Str engine);
            ]
        in
        let rec attempt tries =
          match
            let conn = Daemon.Client.connect socket in
            let r = Daemon.Client.request conn req in
            Daemon.Client.close conn;
            r
          with
          | r -> (
            match status r with
            | Some "ok" -> ()
            | Some "rejected" when tries < 1000 ->
              Atomic.incr rejected;
              Thread.delay 0.002;
              attempt (tries + 1)
            | _ -> Atomic.incr errors)
          | exception _ -> Atomic.incr errors
        in
        let s = now () in
        attempt 0;
        lat.(!i) <- (now () -. s) *. 1e3;
        i := !i + clients
      done
    in
    let threads = List.init clients (fun c -> Thread.create client c) in
    List.iter Thread.join threads;
    let wall = now () -. t0 in
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    {
      engine;
      concurrency = clients;
      phase;
      requests = m;
      wall_s = wall;
      throughput_rps = float_of_int m /. wall;
      p50_ms = percentile sorted 50.;
      p95_ms = percentile sorted 95.;
      p99_ms = percentile sorted 99.;
      rejected = Atomic.get rejected;
      errors = Atomic.get errors;
    }

  let rows ~concurrency_list ~requests =
    let socket =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "kolaoptd-bench-%d.sock" (Unix.getpid ()))
    in
    (* Enough workers to overlap the higher concurrency levels (capped:
       past the core count extra domains only add scheduling noise) and
       an admission queue deep enough that the bench measures latency,
       not retry loops. *)
    let workers = min 16 (Domain.recommended_domain_count ()) in
    let params =
      { Daemon.default_params with Daemon.workers; queue = 128 }
    in
    let t = Daemon.create ~params () in
    let ready_lock = Mutex.create () in
    let ready_cond = Condition.create () in
    let ready_flag = ref false in
    let server =
      Domain.spawn (fun () ->
          Daemon.serve
            ~ready:(fun () ->
              Mutex.protect ready_lock (fun () ->
                  ready_flag := true;
                  Condition.signal ready_cond))
            ~socket t)
    in
    Mutex.protect ready_lock (fun () ->
        while not !ready_flag do
          Condition.wait ready_cond ready_lock
        done);
    let flush () =
      let c = Daemon.Client.connect socket in
      ignore (Daemon.Client.request c (Json.Obj [ ("cmd", Json.Str "flush") ]));
      Daemon.Client.close c
    in
    let queries = workload requests in
    let rows =
      List.concat_map
        (fun engine ->
          List.concat_map
            (fun clients ->
              flush ();
              let cold =
                run_phase ~socket ~engine ~clients ~queries ~phase:"cold"
              in
              let warm =
                run_phase ~socket ~engine ~clients ~queries ~phase:"warm"
              in
              [ cold; warm ])
            concurrency_list)
        [ "bfs"; "egraph" ]
    in
    let c = Daemon.Client.connect socket in
    ignore (Daemon.Client.request c (Json.Obj [ ("cmd", Json.Str "shutdown") ]));
    Daemon.Client.close c;
    Domain.join server;
    (rows, workers)

  let table rows =
    Fmt.pr "@.## serving (kolaoptd over a Unix-domain socket)@.";
    Fmt.pr
      "  %-7s %5s %-5s %5s %10s %9s %9s %9s %5s@."
      "engine" "conc" "phase" "reqs" "thru(r/s)" "p50(ms)" "p95(ms)"
      "p99(ms)" "rej";
    List.iter
      (fun r ->
        Fmt.pr "  %-7s %5d %-5s %5d %10.1f %9.3f %9.3f %9.3f %5d@." r.engine
          r.concurrency r.phase r.requests r.throughput_rps r.p50_ms r.p95_ms
          r.p99_ms r.rejected)
      rows

  let json ~workers ~queue rows =
    let row r =
      Fmt.str
        "    {\"engine\": \"%s\", \"concurrency\": %d, \"phase\": \"%s\", \
         \"requests\": %d, \"wall_s\": %.4f, \"throughput_rps\": %.1f, \
         \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \
         \"rejected\": %d, \"errors\": %d}"
        r.engine r.concurrency r.phase r.requests r.wall_s r.throughput_rps
        r.p50_ms r.p95_ms r.p99_ms r.rejected r.errors
    in
    Fmt.str
      "  \"host_cores\": %d,\n  \"workers\": %d,\n  \"queue_bound\": %d,\n\
      \  \"rows\": [\n%s\n  ]"
      (Domain.recommended_domain_count ())
      workers queue
      (String.concat ",\n" (List.map row rows))
end

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* exec: compiled plan execution vs the interpreter on the company      *)
(* workload.  Plans are chosen once against a small sample store (the   *)
(* optimizer's normal costing path); each chosen plan then executes on  *)
(* scaled stores through both backends.  Timings are best-of-N wall     *)
(* clock, and every cell checks compiled ≡ interpreted (modulo set      *)
(* ordering) before it is reported.                                     *)

module Exec_bench = struct
  module Exec = Kola_exec.Exec

  let now () = Kola_telemetry.Telemetry.now ()

  (* The third component marks queries whose interpreted run is
     structurally super-linear (a closed membership subquery re-evaluated
     per element, a nested-loop intersection): their interpreted
     measurement is skipped at 10^6 objects, where it would take minutes,
     and the row records the compiled time alone. *)
  let queries =
    [
      ("dept_roster", Datagen.Company.dept_roster_oql, false);
      ("mentor_pool", Datagen.Company.mentor_pool_oql, false);
      ("city_salaries", Datagen.Company.city_salaries_oql, false);
      ("payroll", Datagen.Company.payroll_oql, false);
      ("rich_mentors", Datagen.Company.rich_mentors_oql, false);
      ("local_staff", Datagen.Company.local_staff_oql, true);
      ("mentor_elite", Datagen.Company.mentor_elite_oql, true);
    ]

  type row = {
    query : string;
    size : int;  (* employees in the scaled store *)
    layout : string;  (* store layout the compiled cell ran under *)
    jobs : int;  (* domains columnar kernels could fan out to *)
    interp_ms : float option;
        (* interp-hashed, the chosen plan's dedup; None when the
           interpreted run was skipped as intractable at this size *)
    compiled_ms : float;  (* compile + run wall clock *)
    compile_us : float;
    speedup : float option;
    stages : int;
    col_kernels : int;  (* operators lowered to column kernels *)
    morsels : int;  (* chunks dispatched by columnar kernels *)
    degrades : int;  (* columnar inputs kept on row closures *)
    fell_back : bool;
    agrees : bool option;  (* None when there was no interpreted run *)
    agrees_sampled : bool option;
        (* when the full-size interpreted run was skipped, the same plan
           and backend checked against the interpreter on a deterministic
           10^4-employee sample — every reported cell is agree-checked *)
  }

  let time_best ~trials f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to trials do
      let t0 = now () in
      let r = f () in
      let dt = now () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)

  (* The deterministic sample store backing [agrees_sampled]: small
     enough that even the structurally quadratic interpreted runs finish
     in milliseconds, large enough to exercise multi-element groups. *)
  let sample_size = 10_000

  (* [configs] is the (layout × jobs) grid each compiled cell runs
     under; the interpreted baseline is measured once per (query, size)
     and shared across the grid. *)
  let rows ~sizes ~configs =
    let extents = [ "E"; "D" ] in
    let sample = Datagen.Company.db (Datagen.Company.scaled ~seed:77 1_000) in
    let reports =
      List.map
        (fun (name, src, quadratic) ->
          (name, Optimizer.Pipeline.optimize_oql ~extents ~db:sample src, quadratic))
        queries
    in
    let check_store = Datagen.Company.scaled ~seed:77 sample_size in
    let check_db = Datagen.Company.db check_store in
    let check_coldb = lazy (Datagen.Company.columnar check_store) in
    List.concat_map
      (fun size ->
        let store = Datagen.Company.scaled ~seed:77 size in
        let db = Datagen.Company.db store in
        let coldb = lazy (Datagen.Company.columnar store) in
        let trials =
          if size <= 10_000 then 5 else if size <= 100_000 then 3 else 1
        in
        List.concat_map
          (fun (name, report, quadratic) ->
            let interp =
              if quadratic && size >= 1_000_000 then None
              else
                Some
                  (time_best ~trials (fun () ->
                       Optimizer.Pipeline.execute
                         ~backend:(Exec.Interp Eval.Hashed) ~db report))
            in
            List.map
              (fun (layout, jobs) ->
                let pick_coldb c =
                  match layout with
                  | Exec.Columnar -> Some (Lazy.force c)
                  | Exec.Row -> None
                in
                let (cv, st), compiled_s =
                  time_best ~trials (fun () ->
                      Optimizer.Pipeline.execute ~backend:Exec.Compiled ~layout
                        ~jobs ?coldb:(pick_coldb coldb) ~db report)
                in
                let agrees =
                  Option.map (fun ((iv, _), _) -> Exec.agree ~db cv iv) interp
                in
                let agrees_sampled =
                  match agrees with
                  | Some _ -> None
                  | None ->
                    (* the skipped-interp cell is still agree-checked:
                       same plan, same backend configuration, on the
                       deterministic sample store *)
                    let siv, _ =
                      Optimizer.Pipeline.execute
                        ~backend:(Exec.Interp Eval.Hashed) ~db:check_db report
                    in
                    let scv, _ =
                      Optimizer.Pipeline.execute ~backend:Exec.Compiled ~layout
                        ~jobs
                        ?coldb:(pick_coldb check_coldb)
                        ~db:check_db report
                    in
                    Some (Exec.agree ~db:check_db scv siv)
                in
                {
                  query = name;
                  size;
                  layout = Exec.layout_name layout;
                  (* the requested grid cell, not [st.Exec.jobs]: below
                     one morsel the executor now declines the pool, and
                     the tiny-input pin below must still find the cell *)
                  jobs;
                  interp_ms = Option.map (fun (_, s) -> s *. 1e3) interp;
                  compiled_ms = compiled_s *. 1e3;
                  compile_us = st.Exec.compile_us;
                  speedup = Option.map (fun (_, s) -> s /. compiled_s) interp;
                  stages = st.Exec.stages;
                  col_kernels = st.Exec.col_kernels;
                  morsels = st.Exec.morsels;
                  degrades = List.length st.Exec.col_degrades;
                  fell_back = st.Exec.fell_back;
                  agrees;
                  agrees_sampled;
                })
              configs)
          reports)
      sizes

  let table rows =
    Fmt.pr "@.## compiled_execution (interp-hashed vs fused loops)@.";
    Fmt.pr "  %-14s %9s %-8s %4s %12s %12s %9s %7s %7s  %s@." "query" "size"
      "layout" "jobs" "interp" "compiled" "speedup" "kernels" "morsels"
      "check";
    List.iter
      (fun r ->
        let interp =
          match r.interp_ms with
          | Some ms -> Fmt.str "%9.2f ms" ms
          | None -> Fmt.str "%12s" "(skipped)"
        in
        let speedup =
          match r.speedup with
          | Some s -> Fmt.str "%8.1fx" s
          | None -> Fmt.str "%9s" "-"
        in
        Fmt.pr "  %-14s %9d %-8s %4d %s %9.2f ms %s %7d %7d  %s@." r.query
          r.size r.layout r.jobs interp r.compiled_ms speedup r.col_kernels
          r.morsels
          (match (r.agrees, r.agrees_sampled) with
          | Some false, _ -> "MISMATCH"
          | _, Some false -> "MISMATCH-SAMPLED"
          | _ when r.fell_back -> "fell-back"
          | Some true, _ -> "ok"
          | None, Some true -> "ok-sampled"
          | None, None -> "UNCHECKED"))
      rows

  (* Hard pins over a finished row set.  [strict] additionally fails on
     any fallback (the smoke slice: every chosen company plan must stay
     compiled).  Always fails on a disagreement and on a cell nothing
     checked — a skipped interpreted run must leave a sampled check
     behind. *)
  let check_rows ~strict rows =
    List.iter
      (fun r ->
        let cell =
          Fmt.str "%s at %d (%s, jobs %d)" r.query r.size r.layout r.jobs
        in
        (match (r.agrees, r.agrees_sampled) with
        | Some false, _ -> Fmt.failwith "exec bench: %s disagrees with the interpreter" cell
        | _, Some false ->
          Fmt.failwith
            "exec bench: %s disagrees with the interpreter on the %d-employee sample"
            cell sample_size
        | None, None ->
          Fmt.failwith "exec bench: %s was reported without any agree check" cell
        | _ -> ());
        if strict && r.fell_back then
          Fmt.failwith "exec bench: %s unexpectedly fell back" cell)
      rows;
    (* The PR-9 regression pin: rich_mentors compiled must not run
       slower than the interpreter at benchmark scale (it regressed to
       0.84-0.91x before the dedup checks went geometric and the
       translator's dead env-threading got peepholed). *)
    List.iter
      (fun r ->
        if
          r.query = "rich_mentors" && r.layout = "row" && r.size >= 100_000
        then
          match r.speedup with
          | Some s when s < 1.0 ->
            Fmt.failwith
              "exec bench: rich_mentors compiled regressed below the \
               interpreter at %d (%.2fx)"
              r.size s
          | _ -> ())
      rows;
    (* The PR-10 regression pin: below one morsel (65 536 rows) nothing
       can fan out, so extra jobs must cost (almost) nothing.  The seed
       paid a transient domain-pool spawn/join per run and clocked
       0.15-0.21x at 10^3.  A small absolute slack keeps sub-0.1 ms
       cells from tripping on scheduler noise. *)
    let one_morsel = 65_536 in
    List.iter
      (fun r ->
        if r.layout = "columnar" && r.jobs > 1 && r.size <= one_morsel then
          match
            List.find_opt
              (fun b ->
                b.query = r.query && b.size = r.size && b.layout = r.layout
                && b.jobs = 1)
              rows
          with
          | Some base
            when r.compiled_ms > (2.0 *. base.compiled_ms) +. 0.05 ->
            Fmt.failwith
              "exec bench: %s at %d (%s) pays parallel dispatch below one \
               morsel: jobs=%d %.3f ms vs jobs=1 %.3f ms"
              r.query r.size r.layout r.jobs r.compiled_ms base.compiled_ms
          | _ -> ())
      rows

  let json ~mode rows =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf (Fmt.str "  \"mode\": %S,\n" mode);
    Buffer.add_string buf
      (Fmt.str "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ()));
    Buffer.add_string buf "  \"rows\": [\n";
    let fopt fmt = function None -> "null" | Some v -> Fmt.str fmt v in
    let bopt = function None -> "null" | Some b -> Bool.to_string b in
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Fmt.str
             "    {\"query\": %S, \"size\": %d, \"layout\": %S, \"jobs\": \
              %d, \"interp_ms\": %s, \"compiled_ms\": %.3f, \"compile_us\": \
              %.1f, \"speedup\": %s, \"stages\": %d, \"col_kernels\": %d, \
              \"morsels\": %d, \"degrades\": %d, \"fell_back\": %b, \
              \"agrees\": %s, \"agrees_sampled\": %s}%s\n"
             r.query r.size r.layout r.jobs
             (fopt "%.3f" r.interp_ms)
             r.compiled_ms r.compile_us
             (fopt "%.2f" r.speedup)
             r.stages r.col_kernels r.morsels r.degrades r.fell_back
             (bopt r.agrees) (bopt r.agrees_sampled)
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    Buffer.contents buf
end

let () =
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--parallel" :: rest ->
      parallel_only := true;
      parse rest
    | "--hashcons" :: rest ->
      hashcons_only := true;
      parse rest
    | "--egraph" :: rest ->
      egraph_only := true;
      parse rest
    | "--serve" :: rest ->
      serve_only := true;
      parse rest
    | "--exec" :: rest ->
      exec_only := true;
      parse rest
    | "--out" :: file :: rest ->
      out_file := file;
      out_file_given := true;
      parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !hashcons_only then begin
    (* the interned-core group alone: `make bench-hashcons` *)
    Fmt.pr "KOLA hash-consed core benchmark@.";
    Fmt.pr "===============================@.";
    let micros = hashcons_micro ~repeats:(if !fast then 200 else 2_000) () in
    let rows =
      hashcons_scaling_rows ~jobs_list:[ 1; 2; 4 ]
        ~repeats:(if !fast then 2 else 5)
    in
    hashcons_table micros rows;
    if not !out_file_given then out_file := "BENCH_hashcons.json";
    let oc = open_out !out_file in
    output_string oc (Fmt.str "{\n%s\n}\n" (hashcons_json micros rows));
    close_out oc;
    Fmt.pr "  wrote %s@." !out_file;
    Fmt.pr "@.done.@."
  end
  else if !egraph_only then begin
    (* the saturation-vs-BFS group alone: `make bench-egraph` *)
    Fmt.pr "KOLA equality-saturation benchmark@.";
    Fmt.pr "==================================@.";
    let rows = egraph_rows () in
    egraph_table rows;
    if not !out_file_given then out_file := "BENCH_egraph.json";
    let oc = open_out !out_file in
    output_string oc (Fmt.str "{\n%s\n}\n" (egraph_json rows));
    close_out oc;
    Fmt.pr "  wrote %s@." !out_file;
    Fmt.pr "@.done.@."
  end
  else if !exec_only then begin
    (* compiled execution vs the interpreter: `make bench-exec` *)
    Fmt.pr "KOLA compiled-execution benchmark@.";
    Fmt.pr "=================================@.";
    let sizes =
      if !fast then [ 1_000; 100_000 ] else [ 1_000; 100_000; 1_000_000 ]
    in
    (* The layout × jobs grid: the row baseline, sequential columnar, and
       columnar fanned out over 4 domains (morsel boundaries and merge
       order are jobs-independent, so every cell must agree). *)
    let configs =
      [
        (Kola_exec.Exec.Row, 1);
        (Kola_exec.Exec.Columnar, 1);
        (Kola_exec.Exec.Columnar, 4);
      ]
    in
    let rows = Exec_bench.rows ~sizes ~configs in
    Exec_bench.table rows;
    Exec_bench.check_rows ~strict:false rows;
    if not !out_file_given then out_file := "BENCH_exec.json";
    let oc = open_out !out_file in
    output_string oc
      (Exec_bench.json ~mode:(if !fast then "fast" else "full") rows);
    close_out oc;
    Fmt.pr "  wrote %s@." !out_file;
    Fmt.pr "@.done.@."
  end
  else if !serve_only then begin
    (* the serving group alone: `make bench-serve` *)
    Fmt.pr "KOLA serving benchmark (kolaoptd)@.";
    Fmt.pr "=================================@.";
    let concurrency_list = if !fast then [ 1; 4 ] else [ 1; 4; 16; 64 ] in
    let requests = if !fast then 24 else 96 in
    let rows, workers = Serve_bench.rows ~concurrency_list ~requests in
    Serve_bench.table rows;
    if not !out_file_given then out_file := "BENCH_serve.json";
    let oc = open_out !out_file in
    output_string oc
      (Fmt.str "{\n%s\n}\n" (Serve_bench.json ~workers ~queue:128 rows));
    close_out oc;
    Fmt.pr "  wrote %s@." !out_file;
    Fmt.pr "@.done.@."
  end
  else if !parallel_only then begin
    (* the scaling curve alone: `make bench-parallel` *)
    Fmt.pr "KOLA parallel-exploration scaling benchmark@.";
    Fmt.pr "===========================================@.";
    let rows =
      parallel_scaling_rows ~jobs_list:[ 1; 2; 4; 8 ]
        ~repeats:(if !fast then 2 else 5)
    in
    parallel_table rows;
    if not !out_file_given then out_file := "BENCH_parallel.json";
    let oc = open_out !out_file in
    output_string oc (Fmt.str "{\n%s\n}\n" (parallel_json rows));
    close_out oc;
    Fmt.pr "  wrote %s@." !out_file;
    Fmt.pr "@.done.@."
  end
  else if !smoke then begin
    (* engine-internals only: the CI-sized smoke run behind @bench-smoke,
       plus a 2-domain sanity point of the scaling curve *)
    Fmt.pr "KOLA engine-internals smoke benchmark@.";
    Fmt.pr "=====================================@.";
    benchmark_group "engine_internals" engine_tests;
    (* compiled-exec sanity rows: chosen plans at 10^3 under both
       layouts and jobs 1/2, checked against the interpreter — a
       disagreement, an unchecked cell, or an unexpected fallback fails
       the smoke (and with it `make check`), not just the report *)
    let exec_rows =
      Exec_bench.rows ~sizes:[ 1_000 ]
        ~configs:
          [
            (Kola_exec.Exec.Row, 1);
            (Kola_exec.Exec.Columnar, 1);
            (Kola_exec.Exec.Columnar, 2);
          ]
    in
    Exec_bench.table exec_rows;
    Exec_bench.check_rows ~strict:true exec_rows;
    let rows = parallel_scaling_rows ~jobs_list:[ 1; 2 ] ~repeats:2 in
    parallel_table rows;
    (* sanity slice of the interned core: tiny repeats, 1 and 2 domains *)
    let micros = hashcons_micro ~repeats:100 () in
    let hc_rows = hashcons_scaling_rows ~jobs_list:[ 1; 2; 4 ] ~repeats:2 in
    hashcons_table micros hc_rows;
    (* small-budget slice of the saturation group *)
    let eg_rows = egraph_rows () in
    egraph_table eg_rows;
    engine_report ~parallel_rows:rows
      ~hashcons_fragment:(hashcons_json micros hc_rows)
      ~egraph_fragment:(egraph_json eg_rows) ();
    Fmt.pr "@.done.@."
  end
  else begin
  Fmt.pr "KOLA reproduction benchmarks (one group per DESIGN.md experiment)@.";
  Fmt.pr "==================================================================@.";
  benchmark_group "table1_basic_combinators (E-T1)" table1_tests;
  benchmark_group "table2_query_combinators (E-T2)" table2_tests;
  benchmark_group "fig1_aqua_vs_kola_rules (E-F1)" fig1_tests;
  benchmark_group "fig6_code_motion (E-F2/E-F6)" fig6_tests;
  benchmark_group "fig3_garage_eval (E-F3)" fig3_tests;
  fig3_cost_table ();
  benchmark_group "fig4_kola_derivations (E-F4)" fig4_tests;
  benchmark_group "fig8_untangle (E-F8)" fig8_tests;
  fig8_table ();
  benchmark_group "sec42_translation (E-C1)" sec42_tests;
  sec42_table ();
  benchmark_group "rule_matching_throughput" matching_tests;
  benchmark_group "certification (E-C2)" cert_tests;
  cert_table ();
  benchmark_group "ablation_monolithic_vs_gradual" ablation_tests;
  ablation_table ();
  benchmark_group "search_vs_coko" search_tests;
  search_table ();
  benchmark_group "optimizer_pipeline" pipeline_tests;
  benchmark_group "engine_internals" engine_tests;
  let parallel_rows =
    parallel_scaling_rows
      ~jobs_list:(if !fast then [ 1; 2 ] else [ 1; 2; 4; 8 ])
      ~repeats:(if !fast then 2 else 5)
  in
  parallel_table parallel_rows;
  let micros = hashcons_micro ~repeats:(if !fast then 200 else 2_000) () in
  let hc_rows =
    hashcons_scaling_rows
      ~jobs_list:(if !fast then [ 1; 2 ] else [ 1; 2; 4 ])
      ~repeats:(if !fast then 2 else 5)
  in
  hashcons_table micros hc_rows;
  let eg_rows = egraph_rows () in
  egraph_table eg_rows;
  engine_report ~parallel_rows
    ~hashcons_fragment:(hashcons_json micros hc_rows)
    ~egraph_fragment:(egraph_json eg_rows) ();
  Fmt.pr "@.done.@."
  end

(* kolaoptd: the optimizer as a long-lived service.

     kolaoptd serve --socket /tmp/kolaoptd.sock --workers 4 --queue 64
     kolaoptd request --paper t1k --engine egraph
     kolaoptd request "select p.age from p in P where p.age > 25"
     kolaoptd request --cmd stats
     kolaoptd smoke

   One daemon process shares the hash-cons tables, the cost caches and
   an outcome cache across every request; the wire protocol is
   newline-delimited JSON over a Unix-domain socket (see
   lib/server/protocol.mli). *)

open Cmdliner
module Json = Kola_server.Json
module Protocol = Kola_server.Protocol
module Daemon = Kola_server.Daemon

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "kolaoptd.sock"

let socket_arg =
  Arg.(
    value
    & opt string default_socket
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

(* Cmdliner conversions over the daemon's own validators
   (lib/server/protocol.ml), so the CLI and the wire protocol reject
   the same inputs with the same messages. *)
let validated ~docv base validate =
  let parse s =
    match Arg.conv_parser base s with
    | Ok v -> (
      match validate v with Ok v -> Ok v | Error msg -> Error (`Msg msg))
    | Error _ as e -> e
  in
  Arg.conv ~docv (parse, Arg.conv_printer base)

let pos_int what = validated ~docv:"N" Arg.int (Protocol.positive_int ~what)
let pos_float what =
  validated ~docv:"SECONDS" Arg.float (Protocol.positive_float ~what)
let nonneg_int what =
  validated ~docv:"N" Arg.int (Protocol.nonneg_int ~what)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt (nonneg_int "--workers") 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains (0 = one per recommended core).")
  in
  let queue =
    Arg.(
      value
      & opt (pos_int "--queue") Daemon.default_params.Daemon.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission bound: connections queued beyond the busy workers \
             before the daemon answers $(b,rejected) from the accept loop.")
  in
  let outcome_capacity =
    Arg.(
      value
      & opt (pos_int "--outcome-capacity")
          Daemon.default_params.Daemon.outcome_capacity
      & info [ "outcome-capacity" ] ~docv:"N"
          ~doc:"Resident entries in the whole-outcome cache.")
  in
  let people =
    Arg.(value & opt int 40 & info [ "people" ] ~doc:"Number of persons in P.")
  in
  let vehicles =
    Arg.(value & opt int 30 & info [ "vehicles" ] ~doc:"Number of vehicles in V.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let cert_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-cache" ] ~docv:"FILE"
          ~doc:
            "Persisted certificate cache for rule-pack admission: verdicts \
             are keyed by rule fingerprint and certifier version, so a \
             known pack re-admits in O(1) even across daemon restarts.")
  in
  let run socket workers queue outcome_capacity people vehicles seed cert_cache
      =
    let params =
      {
        Daemon.workers;
        queue;
        people;
        vehicles;
        seed;
        outcome_capacity;
        cert_cache;
      }
    in
    let t = Daemon.create ~params () in
    let stop _ = Daemon.request_stop t in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let ready () =
      let s = Daemon.service_stats t in
      Fmt.pr "kolaoptd: listening on %s (%d workers, queue %d)@." socket
        s.Kola_parallel.Pool.Service.workers
        s.Kola_parallel.Pool.Service.bound
    in
    Daemon.serve ~ready ~socket t;
    Fmt.pr "kolaoptd: stopped@."
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the optimizer daemon on a Unix-domain socket.")
    Term.(
      const run $ socket_arg $ workers $ queue $ outcome_capacity $ people
      $ vehicles $ seed $ cert_cache)

(* ------------------------------------------------------------------ *)
(* request *)

let request_cmd =
  let query_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"OQL" ~doc:"An OQL query over extents P, V, A.")
  in
  let paper =
    Arg.(
      value
      & opt (some string) None
      & info [ "paper" ] ~docv:"QUERY"
          ~doc:"A paper query name (t1k, t2k, k4, kg1) instead of OQL.")
  in
  let cmd =
    Arg.(
      value
      & opt (some string) None
      & info [ "cmd" ] ~docv:"CMD"
          ~doc:"Send an admin command: ping, stats, flush or shutdown.")
  in
  let raw =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"LINE"
          ~doc:"Send this JSON request line verbatim (overrides other flags).")
  in
  let engine =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"bfs or egraph.")
  in
  let depth =
    Arg.(
      value
      & opt (some (pos_int "--depth")) None
      & info [ "depth" ] ~doc:"Maximum derivation length.")
  in
  let states =
    Arg.(
      value
      & opt (some (pos_int "--states")) None
      & info [ "states" ] ~doc:"State budget.")
  in
  let jobs =
    Arg.(
      value
      & opt (some (nonneg_int "--jobs")) None
      & info [ "jobs" ] ~docv:"JOBS"
          ~doc:"Domains for intra-request parallelism (serializes requests).")
  in
  let deadline =
    Arg.(
      value
      & opt (some (pos_float "--deadline")) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock budget.")
  in
  let node_budget =
    Arg.(
      value
      & opt (some (pos_int "--node-budget")) None
      & info [ "node-budget" ] ~docv:"N" ~doc:"E-graph e-node budget.")
  in
  let iter_budget =
    Arg.(
      value
      & opt (some (pos_int "--iter-budget")) None
      & info [ "iter-budget" ] ~docv:"N" ~doc:"E-graph iteration budget.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Ask the daemon to embed this request's telemetry spans.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Run the full pipeline (plan choice) instead of search.")
  in
  let execute =
    Arg.(
      value
      & opt (some string) None
      & info [ "execute" ] ~docv:"BACKEND"
          ~doc:
            "With --explain: execute the chosen plan through this backend \
             (compiled, interp, interp-naive) and embed execution stats.")
  in
  let layout =
    Arg.(
      value
      & opt (some string) None
      & info [ "layout" ] ~docv:"LAYOUT"
          ~doc:
            "With --execute: store layout (row or columnar); columnar binds \
             the plan to the daemon's preloaded column store.")
  in
  let rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"PACK.coko"
          ~doc:
            "Read this COKO rule pack and send its source inline in the \
             request's $(b,rules) field — the daemon certifies the pack \
             before searching with it (rejections come back with each \
             failing rule's counterexample).")
  in
  let run socket query paper cmd raw engine depth states jobs deadline
      node_budget iter_budget telemetry explain execute layout rules =
    let rules_source =
      (* Read the pack here — the daemon never touches client files; the
         wire carries the source text itself. *)
      match rules with
      | None -> Ok None
      | Some path -> (
        match In_channel.with_open_bin path In_channel.input_all with
        | source -> Ok (Some source)
        | exception Sys_error msg ->
          Error (Fmt.str "--rules: cannot read %s: %s" path msg))
    in
    let request_json =
      match (raw, rules_source) with
      | _, Error msg -> Error msg
      | Some line, _ -> (
        match Json.parse_result line with
        | Ok j -> Ok j
        | Error msg -> Error (Fmt.str "--json is not valid JSON: %s" msg))
      | None, Ok rules_source -> (
        match cmd with
        | Some c -> Ok (Json.Obj [ ("cmd", Json.Str c) ])
        | None ->
          let source =
            match (paper, query) with
            | Some p, _ -> Ok ("paper", Json.Str p)
            | None, Some q -> Ok ("query", Json.Str q)
            | None, None ->
              Error "request: expected an OQL query, --paper, --cmd or --json"
          in
          Result.map
            (fun source ->
              let num_opt name v =
                Option.map (fun n -> (name, Json.Num (float_of_int n))) v
              in
              Json.Obj
                (List.filter_map Fun.id
                   [
                     Some source;
                     Option.map (fun e -> ("engine", Json.Str e)) engine;
                     num_opt "depth" depth;
                     num_opt "states" states;
                     num_opt "jobs" jobs;
                     Option.map (fun d -> ("deadline", Json.Num d)) deadline;
                     num_opt "node_budget" node_budget;
                     num_opt "iter_budget" iter_budget;
                     (if telemetry then Some ("telemetry", Json.Bool true)
                      else None);
                     (if explain then Some ("explain", Json.Bool true) else None);
                     Option.map (fun b -> ("execute", Json.Str b)) execute;
                     Option.map (fun l -> ("layout", Json.Str l)) layout;
                     Option.map (fun s -> ("rules", Json.Str s)) rules_source;
                   ]))
            source)
    in
    match request_json with
    | Error msg ->
      Fmt.epr "%s@." msg;
      exit 124
    | Ok j -> (
      match Daemon.Client.connect socket with
      | exception Unix.Unix_error (e, _, _) ->
        Fmt.epr "request: cannot connect to %s: %s (is kolaoptd serving?)@."
          socket (Unix.error_message e);
        exit 1
      | c ->
        let resp = Daemon.Client.request c j in
        Daemon.Client.close c;
        Fmt.pr "%s@." (Json.to_string resp);
        let failed =
          match Option.bind (Json.mem "status" resp) Json.str with
          | Some "ok" -> false
          | _ -> true
        in
        if failed then exit 1)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running daemon and print the response.")
    Term.(
      const run $ socket_arg $ query_opt $ paper $ cmd $ raw $ engine $ depth
      $ states $ jobs $ deadline $ node_budget $ iter_budget $ telemetry
      $ explain $ execute $ layout $ rules)

(* ------------------------------------------------------------------ *)
(* smoke: an in-process end-to-end exercise of the serving path, small
   enough for the default verify loop.  Covers one request per engine, a
   malformed line that must not kill its worker, deterministic overload
   via the sleep_ms debug lever, telemetry-on-demand, and a clean
   shutdown. *)

let smoke_cmd =
  let run () =
    let socket =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "kolaoptd-smoke-%d.sock" (Unix.getpid ()))
    in
    let params =
      { Daemon.default_params with Daemon.workers = 2; queue = 2 }
    in
    let t = Daemon.create ~params () in
    let ready_lock = Mutex.create () in
    let ready_cond = Condition.create () in
    let ready_flag = ref false in
    let server =
      Domain.spawn (fun () ->
          Daemon.serve
            ~ready:(fun () ->
              Mutex.protect ready_lock (fun () ->
                  ready_flag := true;
                  Condition.signal ready_cond))
            ~socket t)
    in
    Mutex.protect ready_lock (fun () ->
        while not !ready_flag do
          Condition.wait ready_cond ready_lock
        done);
    let failures = ref 0 in
    let check name cond =
      if cond then Fmt.pr "ok   %s@." name
      else begin
        incr failures;
        Fmt.pr "FAIL %s@." name
      end
    in
    let status j = Option.bind (Json.mem "status" j) Json.str in
    let field j name = Json.mem name j in
    (* Raw connection (bypasses the typed client) for malformed lines. *)
    let raw_connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    in
    let c = Daemon.Client.connect socket in
    let r1 =
      Daemon.Client.request c
        (Json.Obj [ ("id", Json.Num 1.); ("paper", Json.Str "t1k") ])
    in
    check "t1k under bfs answers ok" (status r1 = Some "ok");
    let r2 =
      Daemon.Client.request c
        (Json.Obj
           [
             ("id", Json.Num 2.);
             ("paper", Json.Str "t1k");
             ("engine", Json.Str "egraph");
           ])
    in
    check "t1k under egraph answers ok" (status r2 = Some "ok");
    let r3 =
      Daemon.Client.request c
        (Json.Obj [ ("id", Json.Num 3.); ("paper", Json.Str "t1k") ])
    in
    check "repeat request hits the outcome cache"
      (Option.bind (field r3 "outcome_cache") Json.str = Some "hit");
    (* Malformed input must produce a structured error — and the same
       connection (same worker) must keep answering afterwards. *)
    let fd, ic, oc = raw_connect () in
    output_string oc "{this is not json\n";
    flush oc;
    let bad = Json.parse (input_line ic) in
    check "malformed line answers a structured error"
      (status bad = Some "error");
    output_string oc "{\"id\": 4, \"paper\": \"k4\"}\n";
    flush oc;
    let after = Json.parse (input_line ic) in
    check "worker survives malformed input" (status after = Some "ok");
    let vr =
      Daemon.Client.request c
        (Json.Obj
           [
             ("id", Json.Num 5.);
             ("paper", Json.Str "t1k");
             ("deadline", Json.Num (-1.));
           ])
    in
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check "non-positive deadline is rejected by validation"
      (status vr = Some "error"
      &&
      match Option.bind (field vr "error") Json.str with
      | Some m -> contains m "must be positive"
      | None -> false);
    (* Connections pin their worker for their whole lifetime, so close
       the idle ones before the overload phase or the sleepers would
       never be scheduled. *)
    Daemon.Client.close c;
    close_out_noerr oc;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Unix.sleepf 0.5;
    (* Overload: two sleepers occupy both workers, two more connections
       fill the admission queue, the next connection must be rejected
       from the accept loop. *)
    let sleeper id =
      let conn = Daemon.Client.connect socket in
      Daemon.Client.send conn
        (Json.Obj
           [
             ("id", Json.Num (float_of_int id));
             ("paper", Json.Str "t1k");
             ("sleep_ms", Json.Num 1500.);
           ]);
      conn
    in
    let s1 = sleeper 10 and s2 = sleeper 11 in
    Unix.sleepf 0.3;
    (* workers now hold s1/s2 *)
    let q1 = Daemon.Client.connect socket in
    let q2 = Daemon.Client.connect socket in
    let rejected = ref false in
    let attempts = ref 0 in
    while (not !rejected) && !attempts < 50 do
      incr attempts;
      let extra = Daemon.Client.connect socket in
      (match Daemon.Client.recv extra with
      | r -> if status r = Some "rejected" then rejected := true
      | exception End_of_file -> ());
      Daemon.Client.close extra;
      if not !rejected then Unix.sleepf 0.02
    done;
    check "overload answers rejected with the queue full" !rejected;
    let r10 = Daemon.Client.recv s1 and r11 = Daemon.Client.recv s2 in
    check "sleepers still answer ok after overload"
      (status r10 = Some "ok" && status r11 = Some "ok");
    Daemon.Client.close s1;
    Daemon.Client.close s2;
    Daemon.Client.close q1;
    Daemon.Client.close q2;
    let c = Daemon.Client.connect socket in
    let tr =
      Daemon.Client.request c
        (Json.Obj
           [
             ("id", Json.Num 6.);
             ("paper", Json.Str "t2k");
             ("telemetry", Json.Bool true);
           ])
    in
    check "telemetry on demand embeds spans"
      (status tr = Some "ok" && field tr "telemetry" <> None);
    (* Columnar execution over the daemon's preloaded column store: the
       compiled backend must not fall back, at least one operator must
       lower to a column kernel, and row/columnar runs of the same query
       must agree field-for-field on the deterministic counters. *)
    let exec_req id layout jobs =
      Daemon.Client.request c
        (Json.Obj
           ([
              ("id", Json.Num (float_of_int id));
              ( "query",
                Json.Str "select p.age from p in P where p.age > 25" );
              ("explain", Json.Bool true);
              ("execute", Json.Str "compiled");
              ("layout", Json.Str layout);
            ]
           @ if jobs = 1 then [] else [ ("jobs", Json.Num (float_of_int jobs)) ]
           ))
    in
    let er = exec_req 7 "row" 1 in
    let ec = exec_req 8 "columnar" 1 in
    let ec2 = exec_req 9 "columnar" 2 in
    check "columnar execute answers ok without falling back"
      (status ec = Some "ok"
      && Option.bind (field ec "fell_back") Json.bool = Some false
      && Option.bind (field ec "layout") Json.str = Some "columnar"
      &&
      match Option.bind (field ec "col_kernels") Json.int with
      | Some k -> k > 0
      | None -> false);
    check "row and columnar runs report the same plan"
      (status er = Some "ok"
      && Option.bind (field er "plan") Json.str
         = Option.bind (field ec "plan") Json.str);
    check "columnar execute at jobs 2 answers ok"
      (status ec2 = Some "ok"
      && Option.bind (field ec2 "col_kernels") Json.int
         = Option.bind (field ec "col_kernels") Json.int);
    let bad_layout =
      Daemon.Client.request c
        (Json.Obj
           [
             ("id", Json.Num 12.);
             ("query", Json.Str "select p from p in P");
             ("explain", Json.Bool true);
             ("layout", Json.Str "columnar");
           ])
    in
    check "layout without execute is rejected by validation"
      (status bad_layout = Some "error");
    (* Rule-pack admission: an inline COKO pack must certify, be served,
       and memoize by digest; an unsound pack must come back rejected
       with its counterexample — never silently dropped. *)
    let good_pack =
      "GIVEN injective(?f)\n\
       RULE smoke-inter: inter o (iterate(Kp(T), ?f) x iterate(Kp(T), ?f)) \
       --> iterate(Kp(T), ?f) o inter\n"
    in
    let pack_req id pack =
      Daemon.Client.request c
        (Json.Obj
           [
             ("id", Json.Num (float_of_int id));
             ("paper", Json.Str "t1k");
             ("rules", Json.Str pack);
           ])
    in
    let p1 = pack_req 13 good_pack in
    check "certified pack answers ok with per-rule verdicts"
      (status p1 = Some "ok"
      && field p1 "pack_rules" <> None
      && field p1 "pack_fired" <> None);
    let p2 = pack_req 14 good_pack in
    check "re-sent pack hits the outcome cache"
      (status p2 = Some "ok"
      && Option.bind (field p2 "outcome_cache") Json.str = Some "hit");
    let bad_pack =
      "RULE smoke-r13: ?p (+) <?f, Kf(?k)> --> Cp(?p^-1, ?k) (+) ?f\n"
    in
    let p3 = pack_req 15 bad_pack in
    check "unsound pack is rejected with a counterexample"
      (status p3 = Some "rejected"
      &&
      match field p3 "rules" with
      | Some (Json.Arr [ v ]) -> (
        Json.mem "ok" v = Some (Json.Bool false)
        &&
        match Option.bind (Json.mem "reason" v) Json.str with
        | Some reason -> contains reason "?f :="
        | None -> false)
      | _ -> false);
    let stats =
      Daemon.Client.request c (Json.Obj [ ("cmd", Json.Str "stats") ])
    in
    let rejected_count =
      Option.bind (field stats "service") (fun s ->
          Option.bind (Json.mem "rejected" s) Json.int)
    in
    check "stats reports the rejection"
      (status stats = Some "ok"
      && match rejected_count with Some n -> n >= 1 | None -> false);
    check "stats reports pack admissions and the rejection"
      (match field stats "packs" with
      | Some packs ->
        Option.bind (Json.mem "admitted" packs) Json.int = Some 1
        && Option.bind (Json.mem "rejected" packs) Json.int = Some 1
        &&
        (match Option.bind (Json.mem "cert_cache" packs) (Json.mem "misses") with
        | Some m -> Json.int m = Some 2
        | None -> false)
      | None -> false);
    let sd =
      Daemon.Client.request c (Json.Obj [ ("cmd", Json.Str "shutdown") ])
    in
    check "shutdown answers ok" (status sd = Some "ok");
    Daemon.Client.close c;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Domain.join server;
    check "socket file removed on exit" (not (Sys.file_exists socket));
    if !failures = 0 then Fmt.pr "smoke: all checks passed@."
    else begin
      Fmt.epr "smoke: %d check(s) failed@." !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Start an in-process daemon and drive the serving path end to end \
          (engines, malformed input, overload, telemetry, shutdown).")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "kolaoptd" ~version:"1.0.0"
       ~doc:"Optimizer-as-a-service daemon for the KOLA rewrite engines.")
    [ serve_cmd; request_cmd; smoke_cmd ]

let () = exit (Cmd.eval main)

(* kolaopt: command-line driver for the KOLA optimizer pipeline.

     kolaopt explain "select p.age from p in P where p.age > 25"
     kolaopt run     "select p.addr.city from p in P" --people 100
     kolaopt rules --certify
     kolaopt untangle
*)

open Cmdliner

let store_term =
  let people =
    Arg.(value & opt int 40 & info [ "people" ] ~doc:"Number of persons in P.")
  in
  let vehicles =
    Arg.(value & opt int 30 & info [ "vehicles" ] ~doc:"Number of vehicles in V.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let make people vehicles seed =
    Datagen.Store.generate
      { Datagen.Store.default_params with people; vehicles; seed }
  in
  Term.(const make $ people $ vehicles $ seed)

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OQL" ~doc:"An OQL query over extents P, V, A.")

let handle_errors f =
  try f () with
  | Oql.Parser.Error msg | Oql.Lexer.Error msg ->
    Fmt.epr "parse error: %s@." msg;
    exit 1
  | Translate.Compile.Untranslatable msg ->
    Fmt.epr "translation error: %s@." msg;
    exit 1
  | Kola.Eval.Error msg | Aqua.Eval.Error msg ->
    Fmt.epr "evaluation error: %s@." msg;
    exit 1
  | Coko.Syntax.Error msg ->
    Fmt.epr "coko error: %s@." msg;
    exit 1

(* Load a .coko rule pack and gate it through the certifier (persisted
   cache at [cache_path] when given).  Admission is all-or-nothing: any
   refuted or vacuous rule prints every failing verdict and exits 3 —
   a bad rule is never silently dropped. *)
let admit_pack ?cache_path ?strategy path =
  let cache =
    match cache_path with
    | Some p -> Rules.Cert.Cache.load p
    | None -> Rules.Cert.Cache.in_memory ()
  in
  let outcome = Coko.Pack.admit ?strategy ~cache (Coko.Pack.load path) in
  Rules.Cert.Cache.save cache;
  match outcome with
  | Ok a -> (a, cache)
  | Error a ->
    Fmt.epr "%a@." Coko.Pack.pp_rejection a;
    exit 3

let explain_cmd =
  let run src store =
    handle_errors (fun () ->
        let db = Datagen.Store.db store in
        let report = Optimizer.Pipeline.optimize_oql ~db src in
        Optimizer.Pipeline.pp_report Fmt.stdout report)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the full optimization report for a query.")
    Term.(const run $ query_arg $ store_term)

let run_cmd =
  (* Validated at the cmdliner layer: an unknown backend is a usage error
     listing the accepted names — the same parser the daemon's "execute"
     request field uses. *)
  let backend_conv =
    let parse s =
      Result.map_error (fun m -> `Msg m) (Kola_exec.Exec.backend_of_string s)
    in
    let print ppf b = Fmt.string ppf (Kola_exec.Exec.backend_name b) in
    Arg.conv ~docv:"BACKEND" (parse, print)
  in
  let execute =
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "execute" ] ~docv:"BACKEND"
          ~doc:
            "Execution backend for the chosen plan: $(b,compiled) (fuse the \
             plan into loop closures; unsupported plans fall back to the \
             interpreter, reported in --stats), $(b,interp) (the hashed \
             interpreter), or $(b,interp-naive).  Default: the interpreter \
             backend the optimizer chose.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run the chosen plan on both the compiled backend and the \
             interpreter and fail (exit 1) unless the results agree modulo \
             set ordering.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print execution statistics (compile/run time, loop counters).")
  in
  let exec_stats =
    Arg.(
      value & flag
      & info [ "exec-stats" ]
          ~doc:
            "Print execution statistics including the columnar counters \
             (layout, jobs, column kernels, morsels, degrade reasons).  \
             Synonym of --stats; both print the same line.")
  in
  (* Validated at the cmdliner layer like --execute: an unknown layout is
     a usage error listing the accepted names — the same parser the
     daemon's "layout" request field uses. *)
  let layout_conv =
    let parse s =
      Result.map_error (fun m -> `Msg m) (Kola_exec.Exec.layout_of_string s)
    in
    let print ppf l = Fmt.string ppf (Kola_exec.Exec.layout_name l) in
    Arg.conv ~docv:"LAYOUT" (parse, print)
  in
  let layout =
    Arg.(
      value
      & opt (some layout_conv) None
      & info [ "layout" ] ~docv:"LAYOUT"
          ~doc:
            "Store layout for the $(b,compiled) backend: $(b,row) (the \
             default: boxed values, fused row closures) or $(b,columnar) \
             (typed column vectors; eligible operators run as vectorised \
             column kernels, the rest keep the row closures — counted in \
             the stats).  Results are identical across layouts.")
  in
  let jobs =
    (* Validated at the cmdliner layer: negative counts are a usage error
       rather than being silently resolved like 0 is.  Same validator as
       the daemon's "jobs" request field. *)
    let nonneg =
      let parse s =
        match Arg.conv_parser Arg.int s with
        | Ok n ->
          Result.map_error
            (fun m -> `Msg m)
            (Kola_server.Protocol.nonneg_int ~what:"--jobs" n)
        | Error _ as e -> e
      in
      Arg.conv ~docv:"JOBS" (parse, Arg.conv_printer Arg.int)
    in
    Arg.(
      value & opt nonneg 1
      & info [ "jobs" ] ~docv:"JOBS"
          ~doc:
            "Domains the columnar layout may fan pure kernels out to over \
             fixed-size morsels (1 = sequential; 0 = one per recommended \
             core).  Morsel boundaries and merge order never depend on the \
             setting, so results are bit-identical at every value.")
  in
  let run src store execute verify stats exec_stats layout jobs =
    handle_errors (fun () ->
        let db = Datagen.Store.db store in
        let stats = stats || exec_stats in
        let coldb =
          match layout with
          | Some Kola_exec.Exec.Columnar -> Some (Datagen.Store.columnar store)
          | Some Kola_exec.Exec.Row | None -> None
        in
        let report = Optimizer.Pipeline.optimize_oql ~db src in
        let result, st =
          Optimizer.Pipeline.execute ?backend:execute ?layout ~jobs ?coldb ~db
            report
        in
        if stats then Fmt.pr "stats: %a@." Kola_exec.Exec.pp_stats st;
        if verify then begin
          let compiled, cst =
            Optimizer.Pipeline.execute ~backend:Kola_exec.Exec.Compiled ?layout
              ~jobs ?coldb ~db report
          in
          let interp = Optimizer.Pipeline.run ~db report in
          if stats then Fmt.pr "stats: %a@." Kola_exec.Exec.pp_stats cst;
          if not (Kola_exec.Exec.agree ~db compiled interp) then begin
            Fmt.epr "verify: compiled and interpreted results disagree@.";
            Fmt.epr "  compiled: %a@." Kola.Value.pp compiled;
            Fmt.epr "  interp:   %a@." Kola.Value.pp interp;
            exit 1
          end;
          Fmt.pr "verify: compiled ≡ interpreted@."
        end;
        Fmt.pr "%a@." Kola.Value.pp result)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Optimize and execute a query against a generated store.")
    Term.(
      const run $ query_arg $ store_term $ execute $ verify $ stats
      $ exec_stats $ layout $ jobs)

let rules_cmd =
  let certify =
    Arg.(value & flag & info [ "certify" ] ~doc:"Certify every rule by randomized testing.")
  in
  let run certify =
    if certify then
      List.iter
        (fun r -> Fmt.pr "%a@." Rules.Cert.pp_result r)
        (Rules.Cert.certify_all Rules.Catalog.all)
    else
      List.iter (fun r -> Fmt.pr "%a@." Rewrite.Rule.pp r) Rules.Catalog.all
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"List (or certify) the rule catalog.")
    Term.(const run $ certify)

let translate_cmd =
  let run src =
    handle_errors (fun () ->
        let aqua = Oql.Parser.parse src in
        let q = Translate.Compile.query aqua in
        let m = Translate.Compile.measure aqua in
        Fmt.pr "AQUA: %a@." Aqua.Pretty.pp aqua;
        Fmt.pr "KOLA: %a@." Kola.Pretty.pp_query q;
        Fmt.pr "size: n=%d m=%d kola=%d ratio=%.2f@."
          m.Translate.Compile.aqua_size m.Translate.Compile.nesting
          m.Translate.Compile.kola_size m.Translate.Compile.ratio)
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Show the AQUA and KOLA translations of an OQL query.")
    Term.(const run $ query_arg)

let coko_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A COKO source file.")
  in
  let transformation_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "transformation" ] ~doc:"Transformation to run.")
  in
  let query_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ]
          ~doc:"KOLA query text to transform (default: the Garage Query KG1).")
  in
  let run file transformation query_text =
    handle_errors (fun () ->
        let src =
          let ic = open_in file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let q =
          match query_text with
          | Some text -> Kola.Parse.query text
          | None -> Kola.Paper.kg1
        in
        try
          let o = Coko.Syntax.run_source src ~transformation q in
          Fmt.pr "input:   %a@." Kola.Pretty.pp_query q;
          Fmt.pr "applied: %b@." o.Coko.Block.applied;
          Fmt.pr "rules:   %a@."
            Fmt.(list ~sep:comma string)
            (List.map (fun s -> s.Rewrite.Engine.rule_name) o.Coko.Block.trace);
          Fmt.pr "output:  %a@." Kola.Pretty.pp_query o.Coko.Block.query
        with
        | Coko.Syntax.Error msg | Kola.Parse.Error msg ->
          Fmt.epr "error: %s@." msg;
          exit 1)
  in
  Cmd.v
    (Cmd.info "coko" ~doc:"Run a transformation from a COKO source file.")
    Term.(const run $ file_arg $ transformation_arg $ query_opt)

let untangle_cmd =
  let run () =
    Fmt.pr "KG1 (Figure 3):@.  %a@." Kola.Pretty.pp_query Kola.Paper.kg1;
    ignore
      (List.fold_left
         (fun q block ->
           let o = Coko.Block.run block q in
           Fmt.pr "@.-- %s -->@.  %a@." block.Coko.Block.block_name
             Kola.Pretty.pp_query o.Coko.Block.query;
           o.Coko.Block.query)
         Kola.Paper.kg1 Coko.Programs.hidden_join_steps);
    Fmt.pr "@.= KG2 (Figure 3).@."
  in
  Cmd.v
    (Cmd.info "untangle" ~doc:"Walk the Garage Query through the five-step strategy.")
    Term.(const run $ const ())

let search_cmd =
  let depth =
    Arg.(value & opt int 6 & info [ "depth" ] ~doc:"Maximum derivation length.")
  in
  let states =
    Arg.(value & opt int 2000 & info [ "states" ] ~doc:"State budget.")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive-engine" ]
          ~doc:
            "Disable head-symbol rule dispatch during successor enumeration \
             (the measured baseline; results are identical, only slower).")
  in
  let jobs =
    (* Validated at the cmdliner layer: negative counts are a usage error
       rather than being silently resolved like 0 is.  The validator is
       the daemon's (lib/server/protocol.ml), so CLI and wire requests
       reject the same inputs with the same messages. *)
    let nonneg =
      let parse s =
        match Arg.conv_parser Arg.int s with
        | Ok n ->
          Result.map_error
            (fun m -> `Msg m)
            (Kola_server.Protocol.nonneg_int ~what:"--jobs" n)
        | Error _ as e -> e
      in
      Arg.conv ~docv:"JOBS" (parse, Arg.conv_printer Arg.int)
    in
    Arg.(
      value & opt nonneg 1
      & info [ "jobs" ] ~docv:"JOBS"
          ~doc:
            "Domains exploring each BFS level (1 = sequential; 0 = one per \
             recommended core).  Outcomes are identical at every setting.")
  in
  let legacy_terms =
    Arg.(
      value & flag
      & info [ "legacy-terms" ]
          ~doc:
            "Explore on plain (non-interned) terms — the measured baseline. \
             Results are identical; dedup keys and costing are slower, and \
             no interning stats are reported.")
  in
  let engine =
    (* Validated at the cmdliner layer: an unknown engine is a usage error
       listing the accepted names, not a silent default. *)
    let engine_conv =
      let parse s =
        match String.lowercase_ascii s with
        | "bfs" -> Ok Optimizer.Search.Bfs
        | "egraph" -> Ok Optimizer.Search.Egraph
        | other ->
          Error
            (`Msg
               (Fmt.str "unknown engine %S, accepted engines: bfs, egraph"
                  other))
      in
      let print ppf = function
        | Optimizer.Search.Bfs -> Fmt.string ppf "bfs"
        | Optimizer.Search.Egraph -> Fmt.string ppf "egraph"
      in
      Arg.conv ~docv:"ENGINE" (parse, print)
    in
    Arg.(
      value
      & opt engine_conv Optimizer.Search.Bfs
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Search engine: $(b,bfs) (bounded breadth-first exploration) or \
             $(b,egraph) (equality saturation with cost extraction).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Collect engine telemetry during the search and write a Chrome \
             trace_event JSON file loadable in chrome://tracing or Perfetto \
             (per-rule fire/miss counts, per-level frontier instants, \
             cost-cache and e-graph events).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Collect engine telemetry and print the compact text summary \
             (span totals, counters, distributions) after the search.")
  in
  let deadline =
    (* Validated at the cmdliner layer: a non-positive deadline is a usage
       error, not an instantly-expired search.  Same validator as the
       daemon's "deadline" request field. *)
    let pos_float =
      let parse s =
        match Arg.conv_parser Arg.float s with
        | Ok d ->
          Result.map_error
            (fun m -> `Msg m)
            (Kola_server.Protocol.positive_float ~what:"--deadline" d)
        | Error _ as e -> e
      in
      Arg.conv ~docv:"SECONDS" (parse, Arg.conv_printer Arg.float)
    in
    Arg.(
      value
      & opt (some pos_float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget in seconds.  When it expires the search \
             stops gracefully and reports the best plan found so far with \
             stop reason $(b,deadline).")
  in
  (* E-graph budget overrides.  Validated at the cmdliner layer like
     --jobs: a non-positive budget is a usage error, not an instantly
     exhausted saturation.  Same validator as the daemon's
     "node_budget"/"iter_budget" request fields. *)
  let pos_int flag =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n ->
        Result.map_error
          (fun m -> `Msg m)
          (Kola_server.Protocol.positive_int ~what:flag n)
      | Error _ as e -> e
    in
    Arg.conv ~docv:"N" (parse, Arg.conv_printer Arg.int)
  in
  let node_budget =
    Arg.(
      value
      & opt (some (pos_int "--node-budget")) None
      & info [ "node-budget" ] ~docv:"N"
          ~doc:
            "Maximum e-nodes the $(b,egraph) engine may create before \
             stopping with reason $(b,node-budget) (default 20000).")
  in
  let iter_budget =
    Arg.(
      value
      & opt (some (pos_int "--iter-budget")) None
      & info [ "iter-budget" ] ~docv:"N"
          ~doc:
            "Maximum saturation iterations for the $(b,egraph) engine \
             before stopping with reason $(b,iteration-budget) (default \
             12).")
  in
  let paper =
    (* Validated at the cmdliner layer like --engine: unknown names are a
       usage error listing the accepted queries. *)
    let paper_conv =
      let parse s =
        match String.lowercase_ascii s with
        | "t1k" -> Ok ("T1K", Kola.Paper.t1k_source)
        | "t2k" -> Ok ("T2K", Kola.Paper.t2k_source)
        | "k4" -> Ok ("K4", Kola.Paper.k4)
        | "kg1" -> Ok ("KG1", Kola.Paper.kg1)
        | other ->
          Error
            (`Msg
               (Fmt.str "unknown paper query %S, accepted: t1k, t2k, k4, kg1"
                  other))
      in
      let print ppf (name, _) = Fmt.string ppf name in
      Arg.conv ~docv:"QUERY" (parse, print)
    in
    Arg.(
      value
      & opt (some paper_conv) None
      & info [ "paper" ] ~docv:"QUERY"
          ~doc:
            "Search one of the paper's KOLA queries ($(b,t1k), $(b,t2k), \
             $(b,k4), $(b,kg1)) instead of translating a positional OQL \
             argument.")
  in
  (* --paper makes the positional OQL argument optional. *)
  let query_opt =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"OQL" ~doc:"An OQL query over extents P, V, A.")
  in
  let rules_pack =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"PACK.coko"
          ~doc:
            "Load a COKO rule pack and search with its rules shadowing \
             same-named catalog rules (new rules extend the catalog).  \
             Every pack rule must pass certification first; a refuted or \
             vacuous rule rejects the whole pack (exit 3) with its \
             counterexample.")
  in
  let cert_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-cache" ] ~docv:"FILE"
          ~doc:
            "Persisted certificate cache for --rules: verdicts are keyed \
             by rule fingerprint and certifier version, so re-admitting an \
             unchanged pack is O(1).")
  in
  let run src store depth states naive jobs legacy_terms engine trace stats
      deadline node_budget iter_budget paper rules_pack cert_cache =
    handle_errors (fun () ->
        let db = Datagen.Store.db store in
        let q =
          match (paper, src) with
          | Some (_, q), _ -> q
          | None, Some src -> Translate.Compile.query (Oql.Parser.parse src)
          | None, None ->
            Fmt.epr "search: expected an OQL query or --paper QUERY@.";
            exit 124
        in
        let egraph_budgets =
          let b = Optimizer.Search.default_config.egraph_budgets in
          {
            b with
            Kola_egraph.Saturate.max_enodes =
              Option.value ~default:b.Kola_egraph.Saturate.max_enodes
                node_budget;
            max_iterations =
              Option.value ~default:b.Kola_egraph.Saturate.max_iterations
                iter_budget;
          }
        in
        let pack =
          Option.map
            (fun path -> admit_pack ?cache_path:cert_cache path)
            rules_pack
        in
        let rules =
          match pack with
          | None -> Optimizer.Search.default_config.rules
          | Some (a, cache) ->
            List.iter
              (fun v -> Fmt.pr "pack: %a@." Rules.Cert.pp_verdict v)
              a.Coko.Pack.verdicts;
            Fmt.pr "pack: cert cache %d hits, %d misses@."
              (Rules.Cert.Cache.hits cache)
              (Rules.Cert.Cache.misses cache);
            Coko.Pack.shadow ~base:Rules.Catalog.all
              (Coko.Pack.rules a.Coko.Pack.pack)
        in
        let config =
          {
            Optimizer.Search.default_config with
            engine;
            rules;
            max_depth = depth;
            max_states = states;
            indexed = not naive;
            interned = not legacy_terms;
            sample_db = db;
            jobs;
            deadline;
            egraph_budgets;
          }
        in
        let collect = trace <> None || stats in
        if collect then Kola_telemetry.Telemetry.start ();
        let o = Optimizer.Search.explore ~config q in
        let tr =
          if collect then Some (Kola_telemetry.Telemetry.stop ()) else None
        in
        (* Both engines fan work out over --jobs domains now: BFS its
           level expansion, the e-graph its match phase. *)
        Fmt.pr "domains: %d@." (Optimizer.Search.resolved_jobs config);
        (match o.Optimizer.Search.saturation with
        | Some s -> Fmt.pr "saturation: %a@." Kola_egraph.Saturate.pp_stats s
        | None -> ());
        Fmt.pr
          "explored %d states, stop: %s (cost cache: %d hits, %d misses, %d \
           evictions)@."
          o.Optimizer.Search.explored
          (Optimizer.Search.stop_reason_label o.Optimizer.Search.stop)
          o.Optimizer.Search.cache_hits o.Optimizer.Search.cache_misses
          o.Optimizer.Search.cache_evictions;
        Fmt.pr "dedup: %d distinct states@." o.Optimizer.Search.seen_states;
        if not legacy_terms then
          Fmt.pr
            "interning: %d hits, %d fresh nodes (sharing ratio %.3f)@."
            o.Optimizer.Search.intern_hits o.Optimizer.Search.intern_misses
            o.Optimizer.Search.sharing_ratio;
        Fmt.pr "derivation: %a@."
          Fmt.(list ~sep:comma string)
          o.Optimizer.Search.best.Optimizer.Search.path;
        (match pack with
        | None -> ()
        | Some (a, _) ->
          let path = o.Optimizer.Search.best.Optimizer.Search.path in
          List.iter
            (fun (r : Rewrite.Rule.t) ->
              let fired =
                List.length
                  (List.filter (String.equal r.Rewrite.Rule.name) path)
              in
              Fmt.pr "pack: rule %s fired %d time%s on the winning path@."
                r.Rewrite.Rule.name fired
                (if fired = 1 then "" else "s"))
            (Coko.Pack.rules a.Coko.Pack.pack));
        Fmt.pr "best plan (cost %.1f):@.  %a@."
          o.Optimizer.Search.best.Optimizer.Search.cost Kola.Pretty.pp_query
          o.Optimizer.Search.best.Optimizer.Search.query;
        match tr with
        | None -> ()
        | Some tr ->
          (match trace with
          | Some file ->
            Kola_telemetry.Telemetry.write_chrome file tr;
            Fmt.pr "trace: wrote %s (%d spans, %d marks) — load in \
                    chrome://tracing@."
              file
              (List.length tr.Kola_telemetry.Telemetry.spans)
              (List.length tr.Kola_telemetry.Telemetry.marks)
          | None -> ());
          if stats then
            Fmt.pr "%a" Kola_telemetry.Telemetry.pp_summary tr)
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Optimize by bounded exploration of the rewrite space.")
    Term.(
      const run $ query_opt $ store_term $ depth $ states $ naive $ jobs
      $ legacy_terms $ engine $ trace $ stats $ deadline $ node_budget
      $ iter_budget $ paper $ rules_pack $ cert_cache)

(* [kolaopt certify PACK.coko ...] — the admission gate as a standalone
   command, used by [make certify-packs] to keep every committed pack
   certified from a cold cache. *)
let certify_cmd =
  let packs =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"PACK.coko" ~doc:"COKO rule packs to certify.")
  in
  let cache_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-cache" ] ~docv:"FILE"
          ~doc:"Persisted certificate cache (omit for a cold run).")
  in
  let sampled =
    Arg.(
      value & flag
      & info [ "sampled" ]
          ~doc:
            "Use the randomized checker only, instead of exhaustive \
             small-scope certification with sampled fallback.")
  in
  let run packs cache_path sampled =
    handle_errors (fun () ->
        let strategy = if sampled then `Sampled else `Auto in
        (* [admit_pack] exits 3 itself on a rejected pack, so reaching the
           end of the loop means every pack certified. *)
        List.iter
          (fun path ->
            let a, cache = admit_pack ?cache_path ~strategy path in
            Fmt.pr "%s: %d rule%s admitted@."
              (Coko.Pack.name a.Coko.Pack.pack)
              (List.length a.Coko.Pack.verdicts)
              (if List.length a.Coko.Pack.verdicts = 1 then "" else "s");
            List.iter
              (fun v -> Fmt.pr "  %a@." Rules.Cert.pp_verdict v)
              a.Coko.Pack.verdicts;
            Fmt.pr "  cert cache: %d hits, %d misses@."
              (Rules.Cert.Cache.hits cache)
              (Rules.Cert.Cache.misses cache))
          packs)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Certify COKO rule packs: exhaustive small-scope checking within \
          budget, randomized otherwise.  Exits 3 on the first rejected \
          pack, printing each failing rule's counterexample.")
    Term.(const run $ packs $ cache_path $ sampled)

let main =
  Cmd.group
    (Cmd.info "kolaopt" ~version:"1.0.0"
       ~doc:"Rule-based query optimization over the KOLA combinator algebra.")
    [
      explain_cmd; run_cmd; rules_cmd; untangle_cmd; translate_cmd; coko_cmd;
      search_cmd; certify_cmd;
    ]

let () = exit (Cmd.eval main)

# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test check certify-packs serve-smoke bench bench-fast bench-smoke bench-parallel bench-hashcons bench-egraph bench-serve bench-exec baseline trace-demo clean

all: build

build:
	dune build

test:
	dune runtest

# The default verify path: build, unit tests, the CI-sized bench slice,
# and the serving smoke (daemon end-to-end: engines, malformed input,
# overload rejection, telemetry, clean shutdown).
check:
	dune build && dune runtest && dune build @bench-smoke && $(MAKE) certify-packs && $(MAKE) serve-smoke

# Cold-cache certification of every committed COKO rule pack: exhaustive
# small-scope checking, exit 3 on the first pack with an uncertified rule.
certify-packs:
	dune exec bin/kolaopt.exe -- certify coko/*.coko

# In-process daemon smoke: one request per engine plus a malformed line
# and a deterministic overload, asserting a clean shutdown.
serve-smoke:
	dune exec bin/kolaoptd.exe -- smoke

# Full benchmark sweep (several minutes); writes BENCH_engine.json.
bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

# Engine-internals only, CI-sized; the alias keeps it one command.
bench-smoke:
	dune build @bench-smoke

# The 1/2/4/8-domain exploration scaling curve; writes BENCH_parallel.json.
bench-parallel:
	dune exec bench/main.exe -- --parallel

# The hash-consed core: O(1) equality/hash/key micros and legacy-vs-interned
# exploration at 1/2/4 domains; writes BENCH_hashcons.json.
bench-hashcons:
	dune exec bench/main.exe -- --hashcons

# Equality saturation vs bounded BFS on the Figure 4/6/8 workloads:
# cost parity at the default depth and wall-clock vs a depth-5 symmetric
# closure exploration; writes BENCH_egraph.json.
bench-egraph:
	dune exec bench/main.exe -- --egraph

# Serving throughput/latency: an in-process kolaoptd driven over its
# Unix-domain socket at concurrency 1/4/16/64, cold vs warm shared
# caches, bfs vs egraph; writes BENCH_serve.json.
bench-serve:
	dune exec bench/main.exe -- --serve

# Compiled execution vs the hashed interpreter on the company workload at
# 10^3/10^5/10^6 objects, with a layout x jobs grid per cell (row/1,
# columnar/1, columnar/4; several minutes; interpreted runs of the
# structurally quadratic queries are skipped at 10^6 and replaced by a
# 10^4 sampled agreement check); writes BENCH_exec.json.  `--fast`
# after `--exec` stops at 10^5.
bench-exec:
	dune exec bench/main.exe -- --exec

# Regenerate the committed engine baseline at the repo root.
baseline:
	dune exec bench/main.exe -- --smoke --out BENCH_engine.json

# Regenerate the committed telemetry demo trace: a traced BFS search of
# the paper's K4 query, loadable in chrome://tracing or Perfetto.
trace-demo:
	dune exec bin/kolaopt.exe -- search --paper k4 --depth 4 --trace examples/trace_k4.json --stats

clean:
	dune clean
